"""Lumped-ladder approximations of a distributed RLC line.

The paper's Fig. 1 circuit -- step source, gate resistance ``Rtr``,
uniform distributed RLC line (totals ``Rt``, ``Lt``, ``Ct``), load
capacitance ``CL`` -- is approximated by ``n`` identical lumped segments.
Two builders are provided from one :class:`LadderSpec`:

- :func:`build_ladder_circuit` returns a :class:`~repro.spice.netlist.Circuit`
  for the MNA transient engine;
- :func:`build_ladder_state_space` returns the same network as an explicit
  :class:`~repro.spice.statespace.StateSpace` model (states: inductor
  currents and capacitor voltages) for exact matrix-exponential stepping.

Segment topologies
------------------

``L``  : series (R/n, L/n) then shunt C/n.  Simplest; O(1/n) delay error.
``PI`` : shunt C/2n, series (R/n, L/n), shunt C/2n.  Adjacent half-caps
         merge, giving interior caps of C/n with C/2n at both ends;
         O(1/n**2) error.  Default.
``T``  : series half, shunt C/n, series half.  Interior halves merge;
         also O(1/n**2).

Internally every topology reduces to one *chain description*: ``nb``
series branches ``(R_i, L_i)`` joining node positions ``0 .. nb`` with a
shunt capacitance at each position (possibly zero at the driver side).
Position 0 attaches to the step source through ``Rtr``; the last position
is the measured far end and includes ``CL``.

Convergence of the 50% delay with ``n`` is exercised in the test suite:
with PI segments a few tens of segments give sub-1% delay accuracy
against the exact distributed solution of :mod:`repro.tline`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ParameterError, require_nonnegative, require_positive
from repro.spice.mna import CircuitTemplate
from repro.spice.netlist import Circuit, Param, Step
from repro.spice.statespace import StateSpace

__all__ = [
    "LadderTopology",
    "LadderSpec",
    "build_ladder_circuit",
    "build_ladder_template",
    "build_ladder_state_space",
]


class LadderTopology(str, enum.Enum):
    """Lumped segment arrangement."""

    L = "L"
    PI = "PI"
    T = "T"


@dataclass(frozen=True)
class _Chain:
    """Flattened ladder: branches ``(r[i], l[i])`` join positions i, i+1."""

    r: np.ndarray  # shape (nb,)
    l: np.ndarray  # shape (nb,)
    caps: np.ndarray  # shape (nb + 1,), caps[k] at position k

    @property
    def n_branches(self) -> int:
        return self.r.size


@dataclass(frozen=True)
class LadderSpec:
    """A driver/line/load instance plus its lumping parameters.

    Attributes
    ----------
    rt, lt, ct:
        Total line resistance, inductance, capacitance (SI units).
    rtr:
        Driver output resistance (must be > 0; use a tiny value to
        approximate an ideal driver).
    cl:
        Load capacitance (may be 0).
    n_segments:
        Number of identical lumped segments.
    topology:
        Segment arrangement (default PI).
    """

    rt: float
    lt: float
    ct: float
    rtr: float
    cl: float = 0.0
    n_segments: int = 64
    topology: LadderTopology = LadderTopology.PI

    def __post_init__(self) -> None:
        require_nonnegative("rt", self.rt)
        require_positive("lt", self.lt)
        require_positive("ct", self.ct)
        require_positive("rtr", self.rtr)
        require_nonnegative("cl", self.cl)
        if not isinstance(self.n_segments, int) or self.n_segments < 1:
            raise ParameterError(
                f"n_segments must be a positive integer, got {self.n_segments!r}"
            )
        object.__setattr__(self, "topology", LadderTopology(self.topology))

    @property
    def output_node(self) -> str:
        """Name of the far-end node in the generated circuit."""
        return f"n{self._chain().n_branches}"

    def _chain(self) -> _Chain:
        """Reduce the topology to the flat chain description."""
        branch_w, cap_w = _chain_weights(
            self.n_segments, self.topology, loaded=self.cl > 0
        )
        r = self.rt * np.asarray(branch_w)
        lind = self.lt * np.asarray(branch_w)
        caps = self.ct * np.asarray(cap_w)
        caps[-1] += self.cl
        return _Chain(r=r, l=lind, caps=caps)


def _chain_weights(
    n: int, topology: LadderTopology, loaded: bool
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Per-position weights of the flat chain, as fractions of the totals.

    Returns ``(branch_weights, cap_weights)``: branch ``i`` carries
    ``branch_weights[i] * (Rt, Lt)`` and position ``k`` carries
    ``cap_weights[k] * Ct`` (the load capacitance is *not* folded in
    here).  This single source of truth feeds both the numeric
    :meth:`LadderSpec._chain` and the parameterized
    :func:`build_ladder_template`.
    """
    topology = LadderTopology(topology)
    seg = 1.0 / n
    if topology is LadderTopology.L:
        branch = (seg,) * n
        caps = (0.0,) + (seg,) * n
    elif topology is LadderTopology.PI:
        branch = (seg,) * n
        caps = (seg / 2,) + (seg,) * (n - 1) + (seg / 2,)
    elif loaded:
        # T, loaded far end: half | C | full | ... | C | half.
        branch = (seg / 2,) + (seg,) * (n - 1) + (seg / 2,)
        caps = (0.0,) + (seg,) * n + (0.0,)
    else:
        # T, open far end: the trailing half-branch carries no current
        # and is dropped exactly; the far node is the last mid-cap.
        branch = (seg / 2,) + (seg,) * (n - 1)
        caps = (0.0,) + (seg,) * n
    return branch, caps


@lru_cache(maxsize=64)
def build_ladder_template(
    n_segments: int = 64,
    topology: LadderTopology | str = LadderTopology.PI,
    loaded: bool = True,
    v_step: float = 1.0,
) -> CircuitTemplate:
    """Parameterized ladder: structure fixed, element values as Params.

    The stamp-once / re-value-many view of
    :func:`build_ladder_circuit`: one template serves every
    ``(rt, lt, ct, rtr, cl)`` combination that shares the segment count
    and topology.  Parameter slots are ``rt``, ``lt``, ``ct``, ``rtr``
    and -- when ``loaded`` -- ``cl``; the far-end capacitor merges its
    ``ct`` share with ``cl`` exactly as the concrete builder does.

    ``loaded`` selects the ``cl > 0`` structure (a load capacitor at
    the far end; for the T topology also the trailing half-branch) --
    it must match the circuits being modeled, because zero-vs-nonzero
    ``cl`` is a *structural* difference for T ladders.

    Results are memoized per ``(n_segments, topology, loaded, v_step)``,
    so repeated calls (e.g. one per sweep chunk) reuse the cached MNA
    structure.
    """
    topology = LadderTopology(topology)
    branch_w, cap_w = _chain_weights(n_segments, topology, loaded)
    ckt = Circuit(
        f"RLC ladder template {topology.value} n={n_segments}"
    )
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, v_step))
    ckt.add_resistor("rtr", "in", "n0", Param("rtr"))
    for i, w in enumerate(branch_w):
        ckt.add_resistor(f"r{i + 1}", f"n{i}", f"x{i + 1}", Param("rt", w))
        ckt.add_inductor(f"l{i + 1}", f"x{i + 1}", f"n{i + 1}", Param("lt", w))
    last = len(cap_w) - 1
    for k, w in enumerate(cap_w):
        value = Param("ct", w) if w > 0 else None
        if k == last and loaded:
            value = value + Param("cl") if value is not None else Param("cl")
        if value is not None:
            ckt.add_capacitor(f"c{k}", f"n{k}", "0", value)
    return CircuitTemplate(ckt)


def build_ladder_circuit(spec: LadderSpec, v_step: float = 1.0) -> Circuit:
    """Materialize the ladder as a netlist driven by an ideal step.

    Node names: ``in`` (source), ``n0`` (after ``Rtr``, the line input),
    ``n1 .. n{nb}`` along the chain; ``spec.output_node`` is the far end.
    Internal nodes ``x{i}`` split each branch's R from its L.

    This is a thin ``template.bind(...)`` wrapper over
    :func:`build_ladder_template`; the template path and this concrete
    path are therefore structurally identical by construction (and
    regression-pinned to <= 1e-12 agreement in the equivalence suite).
    """
    loaded = spec.cl > 0
    template = build_ladder_template(
        spec.n_segments, spec.topology, loaded=loaded, v_step=v_step
    )
    params = {"rt": spec.rt, "lt": spec.lt, "ct": spec.ct, "rtr": spec.rtr}
    if loaded:
        params["cl"] = spec.cl
    return template.bind(
        params,
        title=(
            f"RLC ladder {spec.topology.value} n={spec.n_segments} "
            f"(Rt={spec.rt:g}, Lt={spec.lt:g}, Ct={spec.ct:g})"
        ),
    )


def build_ladder_state_space(spec: LadderSpec) -> StateSpace:
    """Explicit state-space model of the ladder (input: source voltage).

    States: the ``nb`` branch (inductor) currents followed by the
    capacitor voltages of every position with nonzero capacitance; the
    output is the far-end node voltage.  When position 0 carries no
    capacitance (L and T topologies) the driver resistor is merged into
    the first branch, whose left terminal is then the ideal source.
    """
    chain = spec._chain()
    nb = chain.n_branches
    caps = chain.caps
    if caps[-1] <= 0:  # pragma: no cover - excluded by _chain construction
        raise ParameterError("far-end position carries no capacitance")

    has_input_cap = caps[0] > 0.0
    cap_positions = [k for k in range(nb + 1) if caps[k] > 0.0]
    cap_state = {pos: nb + i for i, pos in enumerate(cap_positions)}
    n_states = nb + len(cap_positions)

    a = np.zeros((n_states, n_states))
    b = np.zeros((n_states, 1))

    # Branch equations: L_i dI_i/dt = V_i - V_{i+1} - R_i I_i.
    for i in range(nb):
        r_eff = chain.r[i]
        left_state = cap_state.get(i)
        if i == 0 and not has_input_cap:
            # No cap at the line input: the driver resistor is in series
            # with branch 0 and the left terminal is the unit source.
            r_eff += spec.rtr
            b[0, 0] = 1.0 / chain.l[0]
        elif left_state is not None:
            a[i, left_state] += 1.0 / chain.l[i]
        right_state = cap_state.get(i + 1)
        if right_state is not None:
            a[i, right_state] -= 1.0 / chain.l[i]
        a[i, i] -= r_eff / chain.l[i]

    # Node equations: C_k dV_k/dt = I_in - I_out (+ driver feed at pos 0).
    for pos in cap_positions:
        row = cap_state[pos]
        ck = caps[pos]
        if pos > 0:
            a[row, pos - 1] += 1.0 / ck
        if pos < nb:
            a[row, pos] -= 1.0 / ck
        if pos == 0:
            a[row, row] -= 1.0 / (spec.rtr * ck)
            b[row, 0] = 1.0 / (spec.rtr * ck)

    c_row = np.zeros(n_states)
    c_row[cap_state[nb]] = 1.0
    return StateSpace(a=a, b=b, c=c_row)
