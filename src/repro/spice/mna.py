"""Modified Nodal Analysis (MNA) assembly.

Builds the standard linear MNA description of a circuit::

    G x(t) + C dx/dt = b(t)

where ``x`` stacks the non-ground node voltages followed by the branch
currents of voltage sources and inductors.  ``G`` collects resistive and
topological stamps, ``C`` collects capacitive/inductive (dynamic) stamps,
and ``b(t)`` collects the independent sources.

Stamps (rows/cols ``i``/``j`` are the element's +/- node indices, ``m``
its branch index):

=================  =====================================================
Resistor ``R``     ``G[i,i] += 1/R`` etc. (classic conductance stamp)
Capacitor ``C``    same pattern into the ``C`` matrix
Inductor ``L``     KCL: ``G[i,m] += 1``, ``G[j,m] -= 1``;
                   branch: ``G[m,i] += 1``, ``G[m,j] -= 1``, ``C[m,m] -= L``
V source           KCL: ``G[i,m] += 1``, ``G[j,m] -= 1``;
                   branch: ``G[m,i] += 1``, ``G[m,j] -= 1``, ``b[m] = V(t)``
I source           ``b[i] -= I(t)``, ``b[j] += I(t)``
=================  =====================================================

Assembly is *backend-neutral*: stamps accumulate as COO triplets
(:class:`~repro.spice.backend.CooMatrix`), the form every
:class:`~repro.spice.backend.SimulationBackend` consumes directly.
Dense ``(n, n)`` arrays are materialized lazily -- and only on demand --
through the :attr:`MnaSystem.g` / :attr:`MnaSystem.c` properties, so a
1000-segment ladder never allocates an O(n^2) matrix unless a caller
explicitly asks for one.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable

import numpy as np

from repro.errors import NetlistError
from repro.spice.backend import CooMatrix, combine
from repro.spice.netlist import (
    GROUND,
    Capacitor,
    Circuit,
    CurrentControlledCurrentSource,
    CurrentControlledVoltageSource,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageControlledCurrentSource,
    VoltageControlledVoltageSource,
    VoltageSource,
)

__all__ = ["MnaSystem", "build_mna"]


@dataclass(frozen=True)
class MnaSystem:
    """Assembled MNA matrices and source map for a circuit.

    Attributes
    ----------
    g_coo, c_coo:
        The ``(n, n)`` MNA matrices in triplet (COO) form; duplicate
        entries sum.
    node_index:
        Map from node name to row index (ground excluded).
    branch_index:
        Map from element name to its branch-current row index.
    source_rows:
        List of ``(row, sign, waveform)`` triples: ``b(t)[row] += sign *
        waveform(t)``.
    """

    g_coo: CooMatrix
    c_coo: CooMatrix
    node_index: dict[str, int]
    branch_index: dict[str, int]
    source_rows: tuple[tuple[int, float, Callable], ...]

    @cached_property
    def g(self) -> np.ndarray:
        """Dense ``G`` matrix, materialized on first access."""
        return self.g_coo.to_dense()

    @cached_property
    def c(self) -> np.ndarray:
        """Dense ``C`` matrix, materialized on first access."""
        return self.c_coo.to_dense()

    def combine(self, g_weight=1.0, c_weight=0.0) -> CooMatrix:
        """Triplet form of ``g_weight * G + c_weight * C``.

        Complex weights (e.g. ``c_weight = 1j * omega`` for an AC
        solve) promote the result to a complex matrix.  Zero weights
        keep their matrix's sparsity pattern as explicit zeros, so the
        combined pattern is frequency/step-size independent.
        """
        return combine((g_weight, self.g_coo), (c_weight, self.c_coo))

    @property
    def size(self) -> int:
        """Total number of MNA unknowns."""
        return self.g_coo.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self.node_index)

    def rhs(self, t: float) -> np.ndarray:
        """Source vector ``b(t)`` at a scalar time."""
        b = np.zeros(self.size)
        for row, sign, waveform in self.source_rows:
            b[row] += sign * waveform.value_at(t)
        return b

    def rhs_matrix(self, times: np.ndarray) -> np.ndarray:
        """``b(t)`` for an array of times, shape ``(len(times), size)``."""
        times = np.asarray(times, dtype=float)
        b = np.zeros((times.size, self.size))
        for row, sign, waveform in self.source_rows:
            b[:, row] += sign * np.asarray(waveform(times), dtype=float)
        return b

    def voltage_row(self, node) -> int:
        """Row index of a node voltage (raises for unknown nodes)."""
        from repro.spice.netlist import canonical_node

        name = canonical_node(node)
        if name == GROUND:
            raise NetlistError("ground has no MNA row (its voltage is 0)")
        try:
            return self.node_index[name]
        except KeyError:
            raise NetlistError(f"unknown node {name!r}") from None

    def current_row(self, element_name: str) -> int:
        """Row index of a branch current (V sources and inductors only)."""
        try:
            return self.branch_index[element_name]
        except KeyError:
            raise NetlistError(
                f"element {element_name!r} has no branch current"
            ) from None


def build_mna(circuit: Circuit) -> MnaSystem:
    """Assemble the MNA system for a validated circuit (COO form)."""
    circuit.validate()

    nodes = circuit.node_names()
    node_index = {name: i for i, name in enumerate(nodes)}
    n = len(nodes)

    branch_elements = [e for e in circuit.elements if e.needs_branch_current]
    branch_index = {e.name: n + k for k, e in enumerate(branch_elements)}
    size = n + len(branch_elements)

    g_entries: list[tuple[int, int, float]] = []
    c_entries: list[tuple[int, int, float]] = []
    sources: list[tuple[int, float, Callable]] = []

    def idx(node: str) -> int | None:
        return None if node == GROUND else node_index[node]

    def stamp_pair(entries: list, i, j, value: float) -> None:
        """Conductance-style two-node stamp."""
        if i is not None:
            entries.append((i, i, value))
        if j is not None:
            entries.append((j, j, value))
        if i is not None and j is not None:
            entries.append((i, j, -value))
            entries.append((j, i, -value))

    def stamp_branch_topology(i, j, m: int) -> None:
        """KCL coupling + voltage constraint pattern shared by L and V."""
        if i is not None:
            g_entries.append((i, m, 1.0))
            g_entries.append((m, i, 1.0))
        if j is not None:
            g_entries.append((j, m, -1.0))
            g_entries.append((m, j, -1.0))

    def stamp_node_column(row: int, node: str, value: float) -> None:
        """``g[row, node] += value`` skipping ground."""
        col = idx(node)
        if col is not None:
            g_entries.append((row, col, value))

    for element in circuit.elements:
        i = idx(element.node_pos)
        j = idx(element.node_neg)
        if isinstance(element, Resistor):
            stamp_pair(g_entries, i, j, 1.0 / element.value)
        elif isinstance(element, Capacitor):
            stamp_pair(c_entries, i, j, element.value)
        elif isinstance(element, Inductor):
            m = branch_index[element.name]
            stamp_branch_topology(i, j, m)
            c_entries.append((m, m, -element.value))
        elif isinstance(element, VoltageControlledVoltageSource):
            # v_i - v_j - gain*(v_cp - v_cn) = 0, plus KCL coupling.
            m = branch_index[element.name]
            stamp_branch_topology(i, j, m)
            stamp_node_column(m, element.ctrl_pos, -element.gain)
            stamp_node_column(m, element.ctrl_neg, +element.gain)
        elif isinstance(element, CurrentControlledVoltageSource):
            # v_i - v_j - r * I(ctrl) = 0.
            m = branch_index[element.name]
            stamp_branch_topology(i, j, m)
            g_entries.append(
                (m, branch_index[element.ctrl_source], -element.transresistance)
            )
        elif isinstance(element, VoltageSource):
            m = branch_index[element.name]
            stamp_branch_topology(i, j, m)
            sources.append((m, 1.0, element.waveform))
        elif isinstance(element, VoltageControlledCurrentSource):
            # gm*(v_cp - v_cn) leaves node_pos, enters node_neg.
            gm = element.transconductance
            if i is not None:
                stamp_node_column(i, element.ctrl_pos, +gm)
                stamp_node_column(i, element.ctrl_neg, -gm)
            if j is not None:
                stamp_node_column(j, element.ctrl_pos, -gm)
                stamp_node_column(j, element.ctrl_neg, +gm)
        elif isinstance(element, CurrentControlledCurrentSource):
            m_ctrl = branch_index[element.ctrl_source]
            if i is not None:
                g_entries.append((i, m_ctrl, element.gain))
            if j is not None:
                g_entries.append((j, m_ctrl, -element.gain))
        elif isinstance(element, CurrentSource):
            if i is not None:
                sources.append((i, -1.0, element.waveform))
            if j is not None:
                sources.append((j, 1.0, element.waveform))
        else:  # pragma: no cover - future element types
            raise NetlistError(f"unsupported element type: {type(element).__name__}")

    # Mutual inductances: M = k*sqrt(L1*L2) couples the two branch
    # equations (v = L dI/dt + M dI_other/dt).
    inductor_values = {
        e.name: e.value for e in circuit.elements if isinstance(e, Inductor)
    }
    for mutual in circuit.mutual_inductances:
        m1 = branch_index[mutual.inductor1]
        m2 = branch_index[mutual.inductor2]
        mval = mutual.coupling * np.sqrt(
            inductor_values[mutual.inductor1] * inductor_values[mutual.inductor2]
        )
        c_entries.append((m1, m2, -mval))
        c_entries.append((m2, m1, -mval))

    return MnaSystem(
        g_coo=_to_coo(g_entries, size),
        c_coo=_to_coo(c_entries, size),
        node_index=node_index,
        branch_index=branch_index,
        source_rows=tuple(sources),
    )


def _to_coo(entries: list[tuple[int, int, float]], size: int) -> CooMatrix:
    if entries:
        rows, cols, data = (np.asarray(seq) for seq in zip(*entries))
    else:
        rows = cols = np.empty(0, dtype=np.intp)
        data = np.empty(0, dtype=float)
    return CooMatrix(rows, cols, data, (size, size))
