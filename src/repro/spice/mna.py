"""Modified Nodal Analysis (MNA) assembly.

Builds the standard linear MNA description of a circuit::

    G x(t) + C dx/dt = b(t)

where ``x`` stacks the non-ground node voltages followed by the branch
currents of voltage sources and inductors.  ``G`` collects resistive and
topological stamps, ``C`` collects capacitive/inductive (dynamic) stamps,
and ``b(t)`` collects the independent sources.

Stamps (rows/cols ``i``/``j`` are the element's +/- node indices, ``m``
its branch index):

=================  =====================================================
Resistor ``R``     ``G[i,i] += 1/R`` etc. (classic conductance stamp)
Capacitor ``C``    same pattern into the ``C`` matrix
Inductor ``L``     KCL: ``G[i,m] += 1``, ``G[j,m] -= 1``;
                   branch: ``G[m,i] += 1``, ``G[m,j] -= 1``, ``C[m,m] -= L``
V source           KCL: ``G[i,m] += 1``, ``G[j,m] -= 1``;
                   branch: ``G[m,i] += 1``, ``G[m,j] -= 1``, ``b[m] = V(t)``
I source           ``b[i] -= I(t)``, ``b[j] += I(t)``
=================  =====================================================

Assembly is split into a *structural* pass and a *numeric* pass
(the stamp-once / re-value-many design):

- :func:`build_mna_structure` walks the netlist once and produces an
  :class:`MnaStructure`: the frozen COO sparsity pattern, the node and
  branch index maps, the source slots, and -- for every element value
  declared as a :class:`~repro.spice.netlist.Param` -- the bookkeeping
  needed to rewrite just the COO ``data`` arrays for new values.
- :meth:`MnaStructure.revalue` maps a ``{param: value}`` dict to fresh
  ``(g_data, c_data)`` arrays in O(nnz) NumPy work, with no Python loop
  over elements; :meth:`MnaStructure.revalue_many` does the same for a
  whole batch of parameter points at once.

:func:`build_mna` (the historical entry point) is now a thin
composition of the two passes and returns the same
:class:`MnaSystem` as always.  :class:`CircuitTemplate` packages a
parameterized circuit with its structure and can ``bind`` concrete
netlists or emit revalued systems directly.

Stamps accumulate as COO triplets
(:class:`~repro.spice.backend.CooMatrix`), the form every
:class:`~repro.spice.backend.SimulationBackend` consumes directly.
Dense ``(n, n)`` arrays are materialized lazily -- and only on demand --
through the :attr:`MnaSystem.g` / :attr:`MnaSystem.c` properties, so a
1000-segment ladder never allocates an O(n^2) matrix unless a caller
explicitly asks for one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Mapping

import numpy as np

from repro import obs
from repro.errors import NetlistError, ParameterError
from repro.spice.backend import CooMatrix, combine
from repro.spice.netlist import (
    GROUND,
    Capacitor,
    Circuit,
    CurrentControlledCurrentSource,
    CurrentControlledVoltageSource,
    CurrentSource,
    Element,
    Inductor,
    Param,
    ParamAffine,
    Resistor,
    VoltageControlledCurrentSource,
    VoltageControlledVoltageSource,
    VoltageSource,
    is_parametric,
    resolve_value,
)

__all__ = [
    "MnaSystem",
    "MnaStructure",
    "CircuitTemplate",
    "build_mna",
    "build_mna_structure",
]


@dataclass(frozen=True)
class MnaSystem:
    """Assembled MNA matrices and source map for a circuit.

    Attributes
    ----------
    g_coo, c_coo:
        The ``(n, n)`` MNA matrices in triplet (COO) form; duplicate
        entries sum.
    node_index:
        Map from node name to row index (ground excluded).
    branch_index:
        Map from element name to its branch-current row index.
    source_rows:
        List of ``(row, sign, waveform)`` triples: ``b(t)[row] += sign *
        waveform(t)``.
    """

    g_coo: CooMatrix
    c_coo: CooMatrix
    node_index: dict[str, int]
    branch_index: dict[str, int]
    source_rows: tuple[tuple[int, float, Callable], ...]

    @cached_property
    def g(self) -> np.ndarray:
        """Dense ``G`` matrix, materialized on first access."""
        return self.g_coo.to_dense()

    @cached_property
    def c(self) -> np.ndarray:
        """Dense ``C`` matrix, materialized on first access."""
        return self.c_coo.to_dense()

    def combine(self, g_weight=1.0, c_weight=0.0) -> CooMatrix:
        """Triplet form of ``g_weight * G + c_weight * C``.

        Complex weights (e.g. ``c_weight = 1j * omega`` for an AC
        solve) promote the result to a complex matrix.  Zero weights
        keep their matrix's sparsity pattern as explicit zeros, so the
        combined pattern is frequency/step-size independent.
        """
        return combine((g_weight, self.g_coo), (c_weight, self.c_coo))

    @property
    def size(self) -> int:
        """Total number of MNA unknowns."""
        return self.g_coo.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self.node_index)

    def rhs(self, t: float) -> np.ndarray:
        """Source vector ``b(t)`` at a scalar time."""
        b = np.zeros(self.size)
        for row, sign, waveform in self.source_rows:
            b[row] += sign * waveform.value_at(t)
        return b

    def rhs_matrix(self, times: np.ndarray) -> np.ndarray:
        """``b(t)`` for an array of times, shape ``(len(times), size)``."""
        times = np.asarray(times, dtype=float)
        b = np.zeros((times.size, self.size))
        for row, sign, waveform in self.source_rows:
            b[:, row] += sign * np.asarray(waveform(times), dtype=float)
        return b

    def voltage_row(self, node) -> int:
        """Row index of a node voltage (raises for unknown nodes)."""
        return _voltage_row(self.node_index, node)

    def current_row(self, element_name: str) -> int:
        """Row index of a branch current (V sources and inductors only)."""
        return _current_row(self.branch_index, element_name)


def _voltage_row(node_index: Mapping[str, int], node) -> int:
    from repro.spice.netlist import canonical_node

    name = canonical_node(node)
    if name == GROUND:
        raise NetlistError("ground has no MNA row (its voltage is 0)")
    try:
        return node_index[name]
    except KeyError:
        raise NetlistError(f"unknown node {name!r}") from None


def _current_row(branch_index: Mapping[str, int], element_name: str) -> int:
    try:
        return branch_index[element_name]
    except KeyError:
        raise NetlistError(
            f"element {element_name!r} has no branch current"
        ) from None


# ---------------------------------------------------------------------------
# Structural pass: pattern + revaluation plans
# ---------------------------------------------------------------------------

# Value-expression keys.  Each parameter-dependent COO entry belongs to
# one or more *groups*; a group is a scalar expression of the parameter
# values plus per-entry coefficients:
#
#   ("lin", p)         ->  params[p]           (capacitors, inductors)
#   ("inv", p)         ->  1 / params[p]       (resistor conductances)
#   ("sqrt", p)        ->  sqrt(params[p])     (mutuals, one L concrete)
#   ("sqrtprod", p, q) ->  sqrt(params[p] * params[q])   (mutuals)
#
# revalue() evaluates each key once (scalar or batched) and applies
# ``data[idx] += coeffs * value`` per group -- O(nnz) with no Python
# loop over elements.


def _key_value(key: tuple, get):
    """Evaluate one expression key; ``get(name)`` is scalar or array."""
    kind = key[0]
    if kind == "lin":
        return get(key[1])
    if kind == "inv":
        return 1.0 / get(key[1])
    if kind == "sqrt":
        return np.sqrt(get(key[1]))
    return np.sqrt(get(key[1]) * get(key[2]))


class _PlanBuilder:
    """Accumulates one matrix's constant triplets and param groups."""

    def __init__(self) -> None:
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.const: list[float] = []
        self.groups: dict[tuple, tuple[list[int], list[float]]] = {}

    def add_const(self, row: int, col: int, value: float) -> None:
        self.rows.append(row)
        self.cols.append(col)
        self.const.append(value)

    def add_entry(self, row: int, col: int, const: float, terms) -> None:
        """One entry with a constant part plus ``(key, coeff)`` terms."""
        index = len(self.rows)
        self.add_const(row, col, const)
        for key, coeff in terms:
            idx, coeffs = self.groups.setdefault(key, ([], []))
            idx.append(index)
            coeffs.append(coeff)

    def finish(self, size: int) -> "_MatrixPlan":
        if self.rows:
            rows = np.asarray(self.rows, dtype=np.intp)
            cols = np.asarray(self.cols, dtype=np.intp)
            const = np.asarray(self.const, dtype=float)
        else:
            rows = cols = np.empty(0, dtype=np.intp)
            const = np.empty(0, dtype=float)
        groups = tuple(
            (key, np.asarray(idx, dtype=np.intp), np.asarray(coeffs, dtype=float))
            for key, (idx, coeffs) in self.groups.items()
        )
        return _MatrixPlan(rows=rows, cols=cols, const=const, groups=groups, size=size)


@dataclass(frozen=True)
class _MatrixPlan:
    """One MNA matrix as a frozen pattern plus a revaluation recipe.

    ``const`` holds the concrete stamp values with zeros at every
    parameter-dependent slot; each group ``(key, idx, coeffs)`` adds
    ``coeffs * expr(key)`` into ``data[idx]`` during revaluation.
    """

    rows: np.ndarray
    cols: np.ndarray
    const: np.ndarray
    groups: tuple[tuple[tuple, np.ndarray, np.ndarray], ...]
    size: int

    @property
    def nnz(self) -> int:
        return self.const.size

    def pattern(self) -> CooMatrix:
        """The sparsity pattern as a CooMatrix (param slots hold 0)."""
        return CooMatrix(self.rows, self.cols, self.const, (self.size, self.size))

    def data(self, get) -> np.ndarray:
        """Data array for one parameter point; ``get(name) -> float``."""
        out = self.const.copy()
        for key, idx, coeffs in self.groups:
            out[idx] += coeffs * _key_value(key, get)
        return out

    def data_many(self, get, n_points: int) -> np.ndarray:
        """``(n_points, nnz)`` data; ``get(name) -> (n_points,) array``."""
        out = np.tile(self.const, (n_points, 1))
        for key, idx, coeffs in self.groups:
            out[:, idx] += coeffs[None, :] * np.asarray(
                _key_value(key, get), dtype=float
            )[:, None]
        return out


@dataclass(frozen=True)
class MnaStructure:
    """The structural half of an MNA system: pattern, maps, revaluation.

    Produced by :func:`build_mna_structure`.  Everything here depends
    only on the circuit's *topology* (which elements connect which
    nodes) -- never on the element values -- so one structure serves
    arbitrarily many parameter points:

    - the COO sparsity patterns of ``G`` and ``C`` (param slots appear
      as explicit entries holding 0),
    - the node-name / branch-name to row-index maps,
    - the independent-source slots, and
    - the revaluation recipes that turn a ``{param: value}`` mapping
      into fresh COO ``data`` arrays without touching the pattern.

    Attributes
    ----------
    node_index, branch_index:
        Row-index maps (as on :class:`MnaSystem`).
    source_rows:
        ``(row, sign, waveform)`` triples for ``b(t)``.
    param_names:
        Sorted names of every parameter slot; empty for a concrete
        circuit.
    """

    g_plan: _MatrixPlan
    c_plan: _MatrixPlan
    node_index: dict[str, int]
    branch_index: dict[str, int]
    source_rows: tuple[tuple[int, float, Callable], ...]
    param_names: tuple[str, ...]

    @property
    def size(self) -> int:
        """Total number of MNA unknowns."""
        return self.g_plan.size

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self.node_index)

    def voltage_row(self, node) -> int:
        """Row index of a node voltage (raises for unknown nodes)."""
        return _voltage_row(self.node_index, node)

    def current_row(self, element_name: str) -> int:
        """Row index of a branch current (V sources and inductors only)."""
        return _current_row(self.branch_index, element_name)

    def g_pattern(self) -> CooMatrix:
        """Sparsity pattern of ``G`` (parameter slots hold 0)."""
        return self.g_plan.pattern()

    def c_pattern(self) -> CooMatrix:
        """Sparsity pattern of ``C`` (parameter slots hold 0)."""
        return self.c_plan.pattern()

    def combined_pattern(self) -> CooMatrix:
        """Union pattern ``[G; C]`` in the canonical concatenation order.

        The data layout matches ``concatenate([g_data, c_data])``: a
        weighted combination ``a*G + b*C`` for this pattern is exactly
        ``concatenate([a * g_data, b * c_data])``.
        """
        n = self.size
        return CooMatrix(
            np.concatenate([self.g_plan.rows, self.c_plan.rows]),
            np.concatenate([self.g_plan.cols, self.c_plan.cols]),
            np.concatenate([self.g_plan.const, self.c_plan.const]),
            (n, n),
        )

    def _check_params(self, params: Mapping[str, float] | None) -> dict[str, float]:
        params = dict(params or {})
        missing = sorted(set(self.param_names) - set(params))
        unknown = sorted(set(params) - set(self.param_names))
        if missing:
            raise ParameterError(f"missing parameter value(s): {missing}")
        if unknown:
            raise ParameterError(
                f"unknown parameter(s) {unknown}; this structure has "
                f"{list(self.param_names) or 'no parameters'}"
            )
        return params

    def revalue(self, params: Mapping[str, float] | None = None) -> tuple[np.ndarray, np.ndarray]:
        """COO ``(g_data, c_data)`` for one parameter point.

        This is the cheap numeric half of the stamp-once /
        re-value-many split: O(nnz) array work, no netlist walk, no
        re-validation.  ``params`` must provide exactly
        :attr:`param_names` (missing or unknown names raise
        :class:`~repro.errors.ParameterError`, as do values that stamp
        non-finite entries, e.g. a zero resistance).
        """
        params = self._check_params(params)
        obs.inc("spice.mna.revalue_calls")

        def get(name: str) -> np.float64:
            # np.float64 so a zero value inverts to inf (caught below)
            # rather than raising ZeroDivisionError mid-assembly.
            return np.float64(params[name])

        with np.errstate(divide="ignore", invalid="ignore"):
            g_data = self.g_plan.data(get)
            c_data = self.c_plan.data(get)
        if not (np.isfinite(g_data).all() and np.isfinite(c_data).all()):
            raise ParameterError(
                f"parameter values {params!r} stamp non-finite matrix "
                "entries (zero resistance or non-finite value?)"
            )
        return g_data, c_data

    def revalue_many(self, columns: Mapping[str, np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`revalue`: ``(B, nnz_g)`` and ``(B, nnz_c)``.

        ``columns`` maps each parameter name to a length-``B`` array
        (scalars broadcast).  Row ``j`` of each output equals
        ``revalue({name: columns[name][j]})`` exactly.
        """
        cols = {
            name: np.asarray(value, dtype=float).ravel()
            for name, value in dict(columns or {}).items()
        }
        self._check_params({name: 0.0 for name in cols})
        sizes = {c.size for c in cols.values() if c.size != 1}
        if len(sizes) > 1:
            raise ParameterError(
                f"parameter columns have mismatched lengths {sorted(sizes)}"
            )
        n_points = sizes.pop() if sizes else 1
        obs.inc("spice.mna.revalue_many_calls")
        obs.inc("spice.mna.revalue_points", n_points)
        full = {
            name: np.broadcast_to(c, (n_points,)) for name, c in cols.items()
        }

        def get(name: str) -> np.ndarray:
            return full[name]

        with np.errstate(divide="ignore", invalid="ignore"):
            g_data = self.g_plan.data_many(get, n_points)
            c_data = self.c_plan.data_many(get, n_points)
        if not (np.isfinite(g_data).all() and np.isfinite(c_data).all()):
            raise ParameterError(
                "some parameter points stamp non-finite matrix entries "
                "(zero resistance or non-finite value?)"
            )
        return g_data, c_data

    def system(self, params: Mapping[str, float] | None = None) -> MnaSystem:
        """Materialize an :class:`MnaSystem` at one parameter point."""
        g_data, c_data = self.revalue(params)
        n = self.size
        return MnaSystem(
            g_coo=CooMatrix(self.g_plan.rows, self.g_plan.cols, g_data, (n, n)),
            c_coo=CooMatrix(self.c_plan.rows, self.c_plan.cols, c_data, (n, n)),
            node_index=self.node_index,
            branch_index=self.branch_index,
            source_rows=self.source_rows,
        )


def _linear_terms(value) -> tuple[float, tuple[tuple[tuple, float], ...]]:
    """Split a linearly-stamped value into ``(const, ((key, coeff), ...))``."""
    if isinstance(value, Param):
        return 0.0, ((("lin", value.name), value.scale),)
    if isinstance(value, ParamAffine):
        return value.const, tuple(
            (("lin", name), coeff) for name, coeff in value.terms
        )
    return float(value), ()


def _conductance_terms(element: Resistor) -> tuple[float, tuple[tuple[tuple, float], ...]]:
    """Reciprocal stamp of a resistor value (float or single Param)."""
    value = element.value
    if isinstance(value, Param):
        if value.scale <= 0:
            raise NetlistError(
                f"resistor {element.name!r} parameter scale must be "
                f"positive, got {value.scale}"
            )
        return 0.0, ((("inv", value.name), 1.0 / value.scale),)
    return 1.0 / value, ()


def _mutual_terms(coupling: float, l1, l2) -> tuple[float, tuple[tuple[tuple, float], ...]]:
    """``-M = -k * sqrt(L1 * L2)`` with either inductance parametric."""
    for value in (l1, l2):
        if isinstance(value, Param) and value.scale <= 0:
            raise NetlistError(
                "inductors coupled by a mutual inductance need positive "
                f"parameter scales, got {value.scale}"
            )
    if isinstance(l1, Param) and isinstance(l2, Param):
        coeff = -coupling * math.sqrt(l1.scale * l2.scale)
        if l1.name == l2.name:
            return 0.0, ((("lin", l1.name), coeff),)
        p, q = sorted((l1.name, l2.name))
        return 0.0, ((("sqrtprod", p, q), coeff),)
    if isinstance(l1, Param) or isinstance(l2, Param):
        param, concrete = (l1, l2) if isinstance(l1, Param) else (l2, l1)
        coeff = -coupling * math.sqrt(param.scale * float(concrete))
        return 0.0, ((("sqrt", param.name), coeff),)
    return -coupling * math.sqrt(float(l1) * float(l2)), ()


def build_mna_structure(circuit: Circuit) -> MnaStructure:
    """Run the structural assembly pass over a validated circuit.

    Walks the netlist exactly once, producing the frozen
    :class:`MnaStructure` that :meth:`MnaStructure.revalue` (and the
    batched analyses built on it) reuse for every parameter point.
    Concrete circuits work too -- their structure simply has no
    parameter groups, and :func:`build_mna` is implemented on top of
    this pass.

    Only resistor, capacitor and inductor values (and, through the
    inductors, mutual-inductance stamps) may be parameterized;
    controlled-source gains and source waveforms must be concrete.
    """
    circuit.validate()

    nodes = circuit.node_names()
    node_index = {name: i for i, name in enumerate(nodes)}
    n = len(nodes)

    branch_elements = [e for e in circuit.elements if e.needs_branch_current]
    branch_index = {e.name: n + k for k, e in enumerate(branch_elements)}
    size = n + len(branch_elements)

    g = _PlanBuilder()
    c = _PlanBuilder()
    sources: list[tuple[int, float, Callable]] = []

    def idx(node: str) -> int | None:
        return None if node == GROUND else node_index[node]

    def stamp_pair(plan: _PlanBuilder, i, j, const: float, terms) -> None:
        """Conductance-style two-node stamp of a (possibly param) value."""
        neg = tuple((key, -coeff) for key, coeff in terms)
        if i is not None:
            plan.add_entry(i, i, const, terms)
        if j is not None:
            plan.add_entry(j, j, const, terms)
        if i is not None and j is not None:
            plan.add_entry(i, j, -const, neg)
            plan.add_entry(j, i, -const, neg)

    def stamp_branch_topology(i, j, m: int) -> None:
        """KCL coupling + voltage constraint pattern shared by L and V."""
        if i is not None:
            g.add_const(i, m, 1.0)
            g.add_const(m, i, 1.0)
        if j is not None:
            g.add_const(j, m, -1.0)
            g.add_const(m, j, -1.0)

    def stamp_node_column(row: int, node: str, value: float) -> None:
        """``g[row, node] += value`` skipping ground."""
        col = idx(node)
        if col is not None:
            g.add_const(row, col, value)

    def require_concrete(element: Element, label: str, value) -> float:
        if is_parametric(value):
            raise NetlistError(
                f"{label} of {element.name!r} cannot be a parameter; "
                "only R, L and C values may use Param slots"
            )
        return float(value)

    for element in circuit.elements:
        i = idx(element.node_pos)
        j = idx(element.node_neg)
        if isinstance(element, Resistor):
            const, terms = _conductance_terms(element)
            stamp_pair(g, i, j, const, terms)
        elif isinstance(element, Capacitor):
            const, terms = _linear_terms(element.value)
            stamp_pair(c, i, j, const, terms)
        elif isinstance(element, Inductor):
            m = branch_index[element.name]
            stamp_branch_topology(i, j, m)
            const, terms = _linear_terms(element.value)
            c.add_entry(m, m, -const, tuple((k, -co) for k, co in terms))
        elif isinstance(element, VoltageControlledVoltageSource):
            # v_i - v_j - gain*(v_cp - v_cn) = 0, plus KCL coupling.
            gain = require_concrete(element, "gain", element.gain)
            m = branch_index[element.name]
            stamp_branch_topology(i, j, m)
            stamp_node_column(m, element.ctrl_pos, -gain)
            stamp_node_column(m, element.ctrl_neg, +gain)
        elif isinstance(element, CurrentControlledVoltageSource):
            # v_i - v_j - r * I(ctrl) = 0.
            r = require_concrete(
                element, "transresistance", element.transresistance
            )
            m = branch_index[element.name]
            stamp_branch_topology(i, j, m)
            g.add_const(m, branch_index[element.ctrl_source], -r)
        elif isinstance(element, VoltageSource):
            m = branch_index[element.name]
            stamp_branch_topology(i, j, m)
            sources.append((m, 1.0, element.waveform))
        elif isinstance(element, VoltageControlledCurrentSource):
            # gm*(v_cp - v_cn) leaves node_pos, enters node_neg.
            gm = require_concrete(
                element, "transconductance", element.transconductance
            )
            if i is not None:
                stamp_node_column(i, element.ctrl_pos, +gm)
                stamp_node_column(i, element.ctrl_neg, -gm)
            if j is not None:
                stamp_node_column(j, element.ctrl_pos, -gm)
                stamp_node_column(j, element.ctrl_neg, +gm)
        elif isinstance(element, CurrentControlledCurrentSource):
            gain = require_concrete(element, "gain", element.gain)
            m_ctrl = branch_index[element.ctrl_source]
            if i is not None:
                g.add_const(i, m_ctrl, gain)
            if j is not None:
                g.add_const(j, m_ctrl, -gain)
        elif isinstance(element, CurrentSource):
            if i is not None:
                sources.append((i, -1.0, element.waveform))
            if j is not None:
                sources.append((j, 1.0, element.waveform))
        else:  # pragma: no cover - future element types
            raise NetlistError(f"unsupported element type: {type(element).__name__}")

    # Mutual inductances: M = k*sqrt(L1*L2) couples the two branch
    # equations (v = L dI/dt + M dI_other/dt).
    inductor_values = {
        e.name: e.value for e in circuit.elements if isinstance(e, Inductor)
    }
    for mutual in circuit.mutual_inductances:
        m1 = branch_index[mutual.inductor1]
        m2 = branch_index[mutual.inductor2]
        const, terms = _mutual_terms(
            mutual.coupling,
            inductor_values[mutual.inductor1],
            inductor_values[mutual.inductor2],
        )
        c.add_entry(m1, m2, const, terms)
        c.add_entry(m2, m1, const, terms)

    obs.inc("spice.mna.structure_builds")
    obs.observe(
        "spice.mna.structure_size", size, buckets=obs.COUNT_BUCKETS
    )
    return MnaStructure(
        g_plan=g.finish(size),
        c_plan=c.finish(size),
        node_index=node_index,
        branch_index=branch_index,
        source_rows=tuple(sources),
        param_names=circuit.parameter_names(),
    )


def build_mna(circuit: Circuit) -> MnaSystem:
    """Assemble the MNA system for a validated *concrete* circuit.

    Composition of the structural and numeric passes; circuits holding
    :class:`~repro.spice.netlist.Param` slots must go through
    :class:`CircuitTemplate` (or :func:`build_mna_structure`) instead.
    """
    structure = build_mna_structure(circuit)
    if structure.param_names:
        raise NetlistError(
            f"circuit has unbound parameters {list(structure.param_names)}; "
            "wrap it in a CircuitTemplate (or bind values) before build_mna"
        )
    return structure.system()


class CircuitTemplate:
    """A parameterized circuit: structure stamped once, values per use.

    Wraps a :class:`~repro.spice.netlist.Circuit` whose element values
    may be :class:`~repro.spice.netlist.Param` slots, together with the
    (lazily built, cached) :class:`MnaStructure` and optional default
    parameter values.  The batched analyses
    (:func:`~repro.spice.transient.simulate_transient_batch`,
    :func:`~repro.spice.ac.ac_sweep_batch`) consume templates directly;
    :meth:`bind` materializes ordinary concrete netlists for the scalar
    entry points and for regression pinning.

    Parameters
    ----------
    circuit:
        The parameterized netlist (must contain at least one Param).
    defaults:
        Optional baseline parameter values; :meth:`bind` /
        :meth:`system` overlay their ``params`` argument on top.
    """

    def __init__(
        self, circuit: Circuit, defaults: Mapping[str, float] | None = None
    ) -> None:
        names = circuit.parameter_names()
        if not names:
            raise NetlistError(
                "circuit has no parameter slots; use build_mna directly"
            )
        self._circuit = circuit
        self._names = names
        self._defaults = {}
        for key, value in dict(defaults or {}).items():
            if key not in names:
                raise ParameterError(
                    f"default for unknown parameter {key!r}; "
                    f"template has {list(names)}"
                )
            self._defaults[key] = float(value)

    @property
    def circuit(self) -> Circuit:
        """The underlying parameterized netlist."""
        return self._circuit

    @property
    def param_names(self) -> tuple[str, ...]:
        """Sorted names of the template's parameter slots."""
        return self._names

    @property
    def defaults(self) -> dict[str, float]:
        """Copy of the default parameter values."""
        return dict(self._defaults)

    @cached_property
    def structure(self) -> MnaStructure:
        """The frozen MNA structure (built on first access, then cached)."""
        return build_mna_structure(self._circuit)

    def resolve_params(self, params: Mapping[str, float] | None = None) -> dict[str, float]:
        """Defaults overlaid with ``params``; every slot must resolve."""
        merged = dict(self._defaults)
        for key, value in dict(params or {}).items():
            if key not in self._names:
                raise ParameterError(
                    f"unknown parameter {key!r}; template has {list(self._names)}"
                )
            merged[key] = float(value)
        missing = sorted(set(self._names) - set(merged))
        if missing:
            raise ParameterError(f"missing parameter value(s): {missing}")
        return merged

    def bind(
        self,
        params: Mapping[str, float] | None = None,
        *,
        title: str | None = None,
    ) -> Circuit:
        """Materialize a concrete :class:`~repro.spice.netlist.Circuit`.

        Every Param resolves against :meth:`resolve_params`; capacitors
        whose value resolves to exactly zero are dropped (matching the
        skip-zero-shunt convention of the concrete builders), so e.g. a
        bus template bound with ``cct=0`` reproduces the uncoupled
        netlist element for element.
        """
        from dataclasses import replace

        values = self.resolve_params(params)
        bound = Circuit(title if title is not None else self._circuit.title)
        for element in self._circuit.elements:
            value = getattr(element, "value", None)
            if value is None or not is_parametric(value):
                bound.add(element)
                continue
            resolved = resolve_value(value, values)
            if isinstance(element, Capacitor) and resolved == 0.0:
                continue
            bound.add(replace(element, value=resolved))
        for mutual in self._circuit.mutual_inductances:
            bound.add_mutual_inductance(
                mutual.name, mutual.inductor1, mutual.inductor2, mutual.coupling
            )
        return bound

    def system(self, params: Mapping[str, float] | None = None) -> MnaSystem:
        """Revalued :class:`MnaSystem` at one parameter point."""
        return self.structure.system(self.resolve_params(params))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitTemplate({self._circuit.title!r}, "
            f"params={list(self._names)})"
        )
