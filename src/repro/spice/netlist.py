"""Circuit netlist representation.

A :class:`Circuit` is a named collection of two-terminal elements between
named nodes.  Node ``"0"`` (aliases ``"gnd"``, ``"GND"``, ``0``) is ground.

Supported elements mirror the linear subset of SPICE that the paper's
experiments need (the paper itself models gates as linear resistors and
capacitors driven by ideal steps):

- :class:`Resistor`, :class:`Capacitor` (with optional initial voltage),
  :class:`Inductor` (with optional initial current),
- :class:`VoltageSource` / :class:`CurrentSource` carrying a
  :class:`SourceWaveform` (:class:`Dc`, :class:`Step`, :class:`Pulse`,
  :class:`Sine`, :class:`PiecewiseLinear`).

Example
-------
>>> from repro.spice.netlist import Circuit, Step
>>> ckt = Circuit("rc lowpass")
>>> _ = ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
>>> _ = ckt.add_resistor("r1", "in", "out", 1e3)
>>> _ = ckt.add_capacitor("c1", "out", "0", 1e-12)
>>> sorted(ckt.node_names())
['in', 'out']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import NetlistError, require_nonnegative, require_positive

__all__ = [
    "GROUND",
    "Param",
    "ParamAffine",
    "SourceWaveform",
    "Dc",
    "Step",
    "Pulse",
    "Sine",
    "PiecewiseLinear",
    "Element",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "MutualInductance",
    "VoltageControlledVoltageSource",
    "VoltageControlledCurrentSource",
    "CurrentControlledVoltageSource",
    "CurrentControlledCurrentSource",
    "Circuit",
    "canonical_node",
    "is_parametric",
    "value_param_names",
    "resolve_value",
]

GROUND = "0"
_GROUND_ALIASES = {"0", "gnd", "GND", "ground", 0}


def canonical_node(node) -> str:
    """Normalize a node label; ground aliases collapse to ``"0"``."""
    if node in _GROUND_ALIASES:
        return GROUND
    name = str(node)
    if not name:
        raise NetlistError("node name must be non-empty")
    return name


# ---------------------------------------------------------------------------
# Parameter slots (symbolic element values)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """A named parameter slot standing in for a concrete element value.

    An element whose value is ``Param(name, scale)`` resolves to
    ``scale * params[name]`` when the circuit is bound (or revalued)
    against a parameter mapping.  This is the building block of the
    stamp-once / re-value-many split: a
    :class:`~repro.spice.mna.CircuitTemplate` freezes the circuit's
    *structure* while every :class:`Param` marks a value that may change
    between evaluations without re-assembling anything.

    Params support scalar scaling (``Param("ct") * 0.5``, ``w * p``,
    ``p / n``) and addition (``Param("ct", w) + Param("cl")`` yields a
    :class:`ParamAffine`), which is how builders express merged stamps
    such as a far-end capacitance ``w * Ct + CL``.
    """

    name: str
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise NetlistError("parameter name must be a non-empty string")
        scale = float(self.scale)
        if not np.isfinite(scale) or scale == 0.0:
            raise NetlistError(
                f"parameter scale must be finite and nonzero, got {self.scale!r}"
            )
        object.__setattr__(self, "scale", scale)

    def __mul__(self, other):
        if isinstance(other, (int, float)):
            return Param(self.name, self.scale * float(other))
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, (int, float)):
            return Param(self.name, self.scale / float(other))
        return NotImplemented

    def __add__(self, other):
        terms, const = _affine_parts(self)
        try:
            other_terms, other_const = _affine_parts(other)
        except NetlistError:
            return NotImplemented
        return ParamAffine(terms + other_terms, const + other_const)

    __radd__ = __add__

    def resolve(self, params) -> float:
        """Concrete value under a ``{name: value}`` mapping."""
        try:
            return self.scale * float(params[self.name])
        except KeyError:
            raise NetlistError(f"missing value for parameter {self.name!r}") from None


@dataclass(frozen=True)
class ParamAffine:
    """An affine combination of parameters: ``const + sum(coeff * p)``.

    Produced by adding :class:`Param` objects (and numbers); kept as a
    first-class value so linear stamps (capacitors) can merge several
    parameter contributions into one element -- e.g. the far-end
    capacitor of a ladder template, ``Ct/(2n) + CL``.  Terms preserve
    construction order; duplicate names are merged by summing their
    coefficients.
    """

    terms: tuple[tuple[str, float], ...]
    const: float = 0.0

    def __post_init__(self) -> None:
        merged: dict[str, float] = {}
        for name, coeff in self.terms:
            if not isinstance(name, str) or not name:
                raise NetlistError("parameter name must be a non-empty string")
            merged[name] = merged.get(name, 0.0) + float(coeff)
        if not merged:
            raise NetlistError("ParamAffine needs at least one parameter term")
        const = float(self.const)
        coeffs = tuple(merged.values())
        if not all(np.isfinite(c) for c in coeffs) or not np.isfinite(const):
            raise NetlistError("ParamAffine coefficients must be finite")
        object.__setattr__(self, "terms", tuple(merged.items()))
        object.__setattr__(self, "const", const)

    def __add__(self, other):
        try:
            other_terms, other_const = _affine_parts(other)
        except NetlistError:
            return NotImplemented
        return ParamAffine(self.terms + other_terms, self.const + other_const)

    __radd__ = __add__

    def __mul__(self, other):
        if isinstance(other, (int, float)):
            k = float(other)
            return ParamAffine(
                tuple((n, c * k) for n, c in self.terms), self.const * k
            )
        return NotImplemented

    __rmul__ = __mul__

    def resolve(self, params) -> float:
        """Concrete value under a ``{name: value}`` mapping."""
        total = self.const
        for name, coeff in self.terms:
            try:
                total += coeff * float(params[name])
            except KeyError:
                raise NetlistError(
                    f"missing value for parameter {name!r}"
                ) from None
        return total


def _affine_parts(value) -> tuple[tuple[tuple[str, float], ...], float]:
    """Decompose a value into affine ``(terms, const)`` parts."""
    if isinstance(value, Param):
        return ((value.name, value.scale),), 0.0
    if isinstance(value, ParamAffine):
        return value.terms, value.const
    if isinstance(value, (int, float)):
        return (), float(value)
    raise NetlistError(f"cannot combine {value!r} with parameters")


def is_parametric(value) -> bool:
    """True when ``value`` is a :class:`Param` or :class:`ParamAffine`."""
    return isinstance(value, (Param, ParamAffine))


def value_param_names(value) -> tuple[str, ...]:
    """Parameter names referenced by an element value (may be empty)."""
    if isinstance(value, Param):
        return (value.name,)
    if isinstance(value, ParamAffine):
        return tuple(name for name, _ in value.terms)
    return ()


def resolve_value(value, params) -> float:
    """Resolve a possibly-parametric element value to a float."""
    if is_parametric(value):
        return value.resolve(params)
    return float(value)


# ---------------------------------------------------------------------------
# Source waveforms
# ---------------------------------------------------------------------------


class SourceWaveform:
    """Base class: a scalar function of time, vectorized over arrays."""

    def __call__(self, t):
        raise NotImplementedError

    def value_at(self, t: float) -> float:
        """Scalar evaluation convenience."""
        return float(np.asarray(self(np.asarray(t, dtype=float))))


@dataclass(frozen=True)
class Dc(SourceWaveform):
    """Constant value."""

    value: float

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        return np.full_like(t, self.value)


@dataclass(frozen=True)
class Step(SourceWaveform):
    """Step from ``v0`` to ``v1`` at ``t_delay``, optional linear ramp.

    With ``t_rise == 0`` this is the ideal step input the paper assumes
    ("a fast rising signal that can be approximated by a step signal").
    The ideal step switches at ``t_delay`` *exclusive* -- the value at
    exactly ``t_delay`` is still ``v0`` -- so a transient analysis whose
    initial operating point is solved at ``t = t_delay`` starts from the
    pre-step state, as expected for a step response.
    """

    v0: float = 0.0
    v1: float = 1.0
    t_delay: float = 0.0
    t_rise: float = 0.0

    def __post_init__(self) -> None:
        require_nonnegative("t_delay", self.t_delay)
        require_nonnegative("t_rise", self.t_rise)

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        if self.t_rise == 0.0:
            return np.where(t > self.t_delay, self.v1, self.v0)
        frac = np.clip((t - self.t_delay) / self.t_rise, 0.0, 1.0)
        return self.v0 + (self.v1 - self.v0) * frac


@dataclass(frozen=True)
class Pulse(SourceWaveform):
    """SPICE-style periodic trapezoidal pulse."""

    v0: float
    v1: float
    t_delay: float = 0.0
    t_rise: float = 0.0
    t_fall: float = 0.0
    width: float = 1.0
    period: float = 2.0

    def __post_init__(self) -> None:
        require_nonnegative("t_delay", self.t_delay)
        require_nonnegative("t_rise", self.t_rise)
        require_nonnegative("t_fall", self.t_fall)
        require_positive("width", self.width)
        require_positive("period", self.period)
        if self.t_rise + self.width + self.t_fall > self.period:
            raise NetlistError("pulse rise + width + fall must fit in the period")

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        local = np.mod(t - self.t_delay, self.period)
        local = np.where(t < self.t_delay, -1.0, local)
        v = np.full_like(t, self.v0)
        if self.t_rise > 0:
            rising = (local >= 0) & (local < self.t_rise)
            v = np.where(
                rising, self.v0 + (self.v1 - self.v0) * local / self.t_rise, v
            )
        high = (local >= self.t_rise) & (local < self.t_rise + self.width)
        v = np.where(high, self.v1, v)
        fall_end = self.t_rise + self.width + self.t_fall
        if self.t_fall > 0:
            falling = (local >= self.t_rise + self.width) & (local < fall_end)
            frac = (local - self.t_rise - self.width) / self.t_fall
            v = np.where(falling, self.v1 + (self.v0 - self.v1) * frac, v)
        return v


@dataclass(frozen=True)
class Sine(SourceWaveform):
    """``offset + amplitude * sin(2 pi f (t - delay))`` for ``t >= delay``."""

    offset: float
    amplitude: float
    frequency: float
    t_delay: float = 0.0

    def __post_init__(self) -> None:
        require_positive("frequency", self.frequency)
        require_nonnegative("t_delay", self.t_delay)

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        phase = 2.0 * np.pi * self.frequency * (t - self.t_delay)
        return np.where(
            t >= self.t_delay, self.offset + self.amplitude * np.sin(phase), self.offset
        )


@dataclass(frozen=True)
class PiecewiseLinear(SourceWaveform):
    """Piecewise-linear waveform through ``(time, value)`` breakpoints."""

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        pts = tuple((float(a), float(b)) for a, b in self.points)
        if len(pts) < 2:
            raise NetlistError("PWL needs at least two points")
        times = [p[0] for p in pts]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise NetlistError("PWL times must be strictly increasing")
        object.__setattr__(self, "points", pts)

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        xs = np.array([p[0] for p in self.points])
        ys = np.array([p[1] for p in self.points])
        return np.interp(t, xs, ys)


# ---------------------------------------------------------------------------
# Elements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Element:
    """Common two-terminal element data."""

    name: str
    node_pos: str
    node_neg: str

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("element name must be non-empty")
        object.__setattr__(self, "node_pos", canonical_node(self.node_pos))
        object.__setattr__(self, "node_neg", canonical_node(self.node_neg))
        if self.node_pos == self.node_neg:
            raise NetlistError(
                f"element {self.name!r} connects node {self.node_pos!r} to itself"
            )

    @property
    def needs_branch_current(self) -> bool:
        """True when MNA allocates an extra unknown (branch current)."""
        return False


@dataclass(frozen=True)
class Resistor(Element):
    """Linear resistor (ohms).

    The value may be a :class:`Param` (a single scaled parameter slot)
    for use in a :class:`~repro.spice.mna.CircuitTemplate`; affine
    parameter sums are not supported here because the MNA stamp needs
    the *reciprocal* of the resistance.
    """

    value: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if isinstance(self.value, ParamAffine):
            raise NetlistError(
                f"resistor {self.name!r} cannot take a parameter sum "
                "(its stamp is the reciprocal 1/R); use a single Param"
            )
        if not isinstance(self.value, Param):
            require_positive(f"resistor {self.name} value", self.value)


@dataclass(frozen=True)
class Capacitor(Element):
    """Linear capacitor (farads) with optional initial voltage.

    The value may be a :class:`Param` or a :class:`ParamAffine` sum of
    parameters (the capacitive stamp is linear in the value) for use in
    a :class:`~repro.spice.mna.CircuitTemplate`.
    """

    value: float = 0.0
    initial_voltage: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not is_parametric(self.value):
            require_positive(f"capacitor {self.name} value", self.value)


@dataclass(frozen=True)
class Inductor(Element):
    """Linear inductor (henries) with optional initial current.

    MNA allocates a branch-current unknown; positive current flows from
    ``node_pos`` to ``node_neg`` through the inductor.  The value may be
    a single :class:`Param` for use in a
    :class:`~repro.spice.mna.CircuitTemplate`.
    """

    value: float = 0.0
    initial_current: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if isinstance(self.value, ParamAffine):
            raise NetlistError(
                f"inductor {self.name!r} cannot take a parameter sum "
                "(mutual couplings need sqrt(L1*L2)); use a single Param"
            )
        if not isinstance(self.value, Param):
            require_positive(f"inductor {self.name} value", self.value)

    @property
    def needs_branch_current(self) -> bool:
        return True


@dataclass(frozen=True)
class VoltageSource(Element):
    """Independent voltage source; ``node_pos`` is the + terminal.

    The MNA branch current is the current flowing from ``node_pos``
    through the source to ``node_neg`` (SPICE convention: a positive
    branch current means the source is *absorbing* power).
    """

    waveform: SourceWaveform = field(default_factory=lambda: Dc(0.0))

    @property
    def needs_branch_current(self) -> bool:
        return True


@dataclass(frozen=True)
class CurrentSource(Element):
    """Independent current source.

    A positive value drives current *from* ``node_pos`` *to* ``node_neg``
    through the source (i.e. it pulls current out of ``node_pos`` and
    injects it into ``node_neg``).
    """

    waveform: SourceWaveform = field(default_factory=lambda: Dc(0.0))


@dataclass(frozen=True)
class MutualInductance:
    """Magnetic coupling between two named inductors (SPICE ``K``).

    ``coupling`` is the dimensionless coefficient ``k`` with
    ``M = k * sqrt(L1 * L2)``; on-chip neighboring wires typically show
    ``k`` of 0.4-0.7.  Not an :class:`Element` (it has no nodes of its
    own) -- it references two inductors already in the circuit.
    """

    name: str
    inductor1: str
    inductor2: str
    coupling: float

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("mutual inductance name must be non-empty")
        if self.inductor1 == self.inductor2:
            raise NetlistError(
                f"mutual {self.name!r} couples {self.inductor1!r} to itself"
            )
        if not -1.0 < self.coupling < 1.0 or self.coupling == 0:
            raise NetlistError(
                f"coupling coefficient must be in (-1, 1) and nonzero, "
                f"got {self.coupling!r}"
            )


@dataclass(frozen=True)
class VoltageControlledVoltageSource(Element):
    """VCVS (SPICE ``E``): ``V(out) = gain * V(ctrl_pos, ctrl_neg)``."""

    ctrl_pos: str = GROUND
    ctrl_neg: str = GROUND
    gain: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "ctrl_pos", canonical_node(self.ctrl_pos))
        object.__setattr__(self, "ctrl_neg", canonical_node(self.ctrl_neg))

    @property
    def needs_branch_current(self) -> bool:
        return True


@dataclass(frozen=True)
class VoltageControlledCurrentSource(Element):
    """VCCS (SPICE ``G``): current ``gm * V(ctrl_pos, ctrl_neg)`` flows
    from ``node_pos`` through the source to ``node_neg``."""

    ctrl_pos: str = GROUND
    ctrl_neg: str = GROUND
    transconductance: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "ctrl_pos", canonical_node(self.ctrl_pos))
        object.__setattr__(self, "ctrl_neg", canonical_node(self.ctrl_neg))


@dataclass(frozen=True)
class CurrentControlledVoltageSource(Element):
    """CCVS (SPICE ``H``): ``V(out) = transresistance * I(ctrl_source)``.

    The controlling current is the branch current of a named voltage
    source (or inductor) already in the circuit.
    """

    ctrl_source: str = ""
    transresistance: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.ctrl_source:
            raise NetlistError(f"CCVS {self.name!r} needs a controlling source")

    @property
    def needs_branch_current(self) -> bool:
        return True


@dataclass(frozen=True)
class CurrentControlledCurrentSource(Element):
    """CCCS (SPICE ``F``): current ``gain * I(ctrl_source)`` flows from
    ``node_pos`` through the source to ``node_neg``."""

    ctrl_source: str = ""
    gain: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.ctrl_source:
            raise NetlistError(f"CCCS {self.name!r} needs a controlling source")


# ---------------------------------------------------------------------------
# Circuit
# ---------------------------------------------------------------------------


class Circuit:
    """A mutable netlist: elements between named nodes.

    Elements are added via the ``add_*`` helpers (or :meth:`add` for a
    prebuilt element).  Names must be unique across the circuit.
    """

    def __init__(self, title: str = "") -> None:
        self.title = title
        self._elements: list[Element] = []
        self._mutuals: list[MutualInductance] = []
        self._names: set[str] = set()

    # -- construction -------------------------------------------------------

    def add(self, element):
        """Add a prebuilt element -- or parse a netlist statement string.

        Given an :class:`Element`, appends it (names must be unique)
        and returns it for chaining.  Given a string, parses it as one
        or more SPICE-style element lines (the incremental, lcapy-style
        API)::

            ckt.add("R1 in mid 50")
            ckt.add("V1 in 0 STEP(0 1)")

        and returns the added element (a list when the string holds
        several statements).  See :mod:`repro.spice.parser` for the
        grammar; wires (``W``/zero-ohm shorts) and dot-directives need
        the whole-netlist entry point
        :func:`~repro.spice.parser.parse_netlist` and are rejected here.
        """
        if isinstance(element, str):
            from repro.spice.parser import parse_statement

            return parse_statement(self, element)
        if element.name in self._names:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._elements.append(element)
        return element

    def add_resistor(self, name: str, n1, n2, value: float) -> Resistor:
        """Add a resistor of ``value`` ohms between ``n1`` and ``n2``."""
        return self.add(Resistor(name, n1, n2, value))  # type: ignore[return-value]

    def add_capacitor(
        self, name: str, n1, n2, value: float, initial_voltage: float = 0.0
    ) -> Capacitor:
        """Add a capacitor of ``value`` farads between ``n1`` and ``n2``."""
        return self.add(Capacitor(name, n1, n2, value, initial_voltage))  # type: ignore[return-value]

    def add_inductor(
        self, name: str, n1, n2, value: float, initial_current: float = 0.0
    ) -> Inductor:
        """Add an inductor of ``value`` henries between ``n1`` and ``n2``."""
        return self.add(Inductor(name, n1, n2, value, initial_current))  # type: ignore[return-value]

    def add_voltage_source(
        self, name: str, n_pos, n_neg, waveform: SourceWaveform | float
    ) -> VoltageSource:
        """Add a voltage source; a bare number is treated as DC."""
        if isinstance(waveform, (int, float)):
            waveform = Dc(float(waveform))
        return self.add(VoltageSource(name, n_pos, n_neg, waveform))  # type: ignore[return-value]

    def add_current_source(
        self, name: str, n_pos, n_neg, waveform: SourceWaveform | float
    ) -> CurrentSource:
        """Add a current source; a bare number is treated as DC."""
        if isinstance(waveform, (int, float)):
            waveform = Dc(float(waveform))
        return self.add(CurrentSource(name, n_pos, n_neg, waveform))  # type: ignore[return-value]

    def add_mutual_inductance(
        self, name: str, inductor1: str, inductor2: str, coupling: float
    ) -> MutualInductance:
        """Magnetically couple two inductors already in the circuit."""
        if name in self._names:
            raise NetlistError(f"duplicate element name {name!r}")
        mutual = MutualInductance(name, inductor1, inductor2, coupling)
        self._names.add(name)
        self._mutuals.append(mutual)
        return mutual

    def add_vcvs(
        self, name: str, n_pos, n_neg, ctrl_pos, ctrl_neg, gain: float
    ) -> VoltageControlledVoltageSource:
        """Add a voltage-controlled voltage source (SPICE ``E``)."""
        return self.add(  # type: ignore[return-value]
            VoltageControlledVoltageSource(
                name, n_pos, n_neg, ctrl_pos, ctrl_neg, gain
            )
        )

    def add_vccs(
        self, name: str, n_pos, n_neg, ctrl_pos, ctrl_neg, transconductance: float
    ) -> VoltageControlledCurrentSource:
        """Add a voltage-controlled current source (SPICE ``G``)."""
        return self.add(  # type: ignore[return-value]
            VoltageControlledCurrentSource(
                name, n_pos, n_neg, ctrl_pos, ctrl_neg, transconductance
            )
        )

    def add_ccvs(
        self, name: str, n_pos, n_neg, ctrl_source: str, transresistance: float
    ) -> CurrentControlledVoltageSource:
        """Add a current-controlled voltage source (SPICE ``H``)."""
        return self.add(  # type: ignore[return-value]
            CurrentControlledVoltageSource(
                name, n_pos, n_neg, ctrl_source, transresistance
            )
        )

    def add_cccs(
        self, name: str, n_pos, n_neg, ctrl_source: str, gain: float
    ) -> CurrentControlledCurrentSource:
        """Add a current-controlled current source (SPICE ``F``)."""
        return self.add(  # type: ignore[return-value]
            CurrentControlledCurrentSource(name, n_pos, n_neg, ctrl_source, gain)
        )

    # -- introspection ------------------------------------------------------

    @property
    def elements(self) -> tuple[Element, ...]:
        """All elements, in insertion order."""
        return tuple(self._elements)

    @property
    def mutual_inductances(self) -> tuple[MutualInductance, ...]:
        """All mutual-inductance couplings, in insertion order."""
        return tuple(self._mutuals)

    def elements_of_type(self, kind: type) -> list[Element]:
        """All elements of the given class."""
        return [e for e in self._elements if isinstance(e, kind)]

    def parameter_names(self) -> tuple[str, ...]:
        """Names of all :class:`Param` slots used by element values.

        Sorted alphabetically; empty for a fully concrete circuit.
        """
        names: set[str] = set()
        for e in self._elements:
            names.update(value_param_names(getattr(e, "value", None)))
        return tuple(sorted(names))

    def node_names(self) -> list[str]:
        """All non-ground node names, in order of first appearance."""
        seen: dict[str, None] = {}
        for e in self._elements:
            for node in (e.node_pos, e.node_neg):
                if node != GROUND and node not in seen:
                    seen[node] = None
        return list(seen)

    def to_netlist(self) -> str:
        """Render the circuit as SPICE-like netlist text.

        The output parses back (:func:`repro.spice.parser.parse_netlist`)
        into an equivalent circuit: same node names, same element order,
        bit-identical values (floats are emitted via ``repr``, which
        round-trips exactly).  :class:`Param` / :class:`ParamAffine`
        values are emitted as ``{...}`` expressions.

        Requires netlist-compatible naming: each element's name must
        start with its SPICE type letter (``R1`` for a resistor, ``vin``
        for a voltage source, ...) and names/nodes must be plain tokens
        -- violations raise :class:`~repro.errors.NetlistError` rather
        than emitting text that would parse back as something else.
        """
        lines = []
        if self.title:
            lines.append(f".title {self.title}")
        for element in self._elements:
            lines.append(_format_element(element))
        for mutual in self._mutuals:
            _check_prefix(mutual.name, "K", "mutual inductance")
            lines.append(
                f"{mutual.name} {mutual.inductor1} {mutual.inductor2} "
                f"{_format_number(mutual.coupling)}"
            )
        lines.append(".end")
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.title!r}, {len(self._elements)} elements, "
            f"{len(self.node_names())} nodes)"
        )

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Sanity-check the netlist.

        Raises :class:`NetlistError` if the circuit is empty, has no ground
        reference, or contains nodes reachable only through capacitors'
        ideal DC-open (which would make the DC operating point singular).
        """
        if not self._elements:
            raise NetlistError("circuit has no elements")
        touches_ground = any(
            GROUND in (e.node_pos, e.node_neg) for e in self._elements
        )
        if not touches_ground:
            raise NetlistError("circuit has no connection to ground")
        self._check_references()
        self._check_connectivity()

    def _check_references(self) -> None:
        """Mutuals and current-controlled sources must point at real
        branch-current-carrying elements."""
        inductors = {e.name for e in self._elements if isinstance(e, Inductor)}
        branches = {
            e.name for e in self._elements if e.needs_branch_current
        }
        for mutual in self._mutuals:
            for ref in (mutual.inductor1, mutual.inductor2):
                if ref not in inductors:
                    raise NetlistError(
                        f"mutual {mutual.name!r} references unknown "
                        f"inductor {ref!r}"
                    )
        for element in self._elements:
            ctrl = getattr(element, "ctrl_source", None)
            if ctrl is not None and ctrl not in branches:
                raise NetlistError(
                    f"{element.name!r} references {ctrl!r}, which carries "
                    "no branch current (must be a V source, inductor, "
                    "VCVS or CCVS)"
                )

    def _check_connectivity(self) -> None:
        """Every node must be reachable from ground through any elements."""
        adjacency: dict[str, set[str]] = {}
        for e in self._elements:
            adjacency.setdefault(e.node_pos, set()).add(e.node_neg)
            adjacency.setdefault(e.node_neg, set()).add(e.node_pos)
        reached = {GROUND}
        frontier = [GROUND]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
        unreachable = [n for n in self.node_names() if n not in reached]
        if unreachable:
            raise NetlistError(f"nodes not connected to ground: {unreachable}")


# ---------------------------------------------------------------------------
# Netlist text emission (the inverse of repro.spice.parser)
# ---------------------------------------------------------------------------

_TOKEN_RE = __import__("re").compile(r"[A-Za-z0-9_][A-Za-z0-9_.\-]*")
_IDENT_RE = __import__("re").compile(r"[A-Za-z_][A-Za-z_0-9]*")


def _check_token(token: str, what: str) -> str:
    """A name/node usable as a whitespace-delimited netlist field."""
    if not _TOKEN_RE.fullmatch(token):
        raise NetlistError(
            f"{what} {token!r} cannot be written as a netlist token"
        )
    return token


def _check_prefix(name: str, letter: str, what: str) -> str:
    """Element names must start with their SPICE type letter to parse
    back as the same element kind."""
    _check_token(name, f"{what} name")
    if name[0].upper() != letter:
        raise NetlistError(
            f"{what} {name!r} must be named with a leading "
            f"{letter!r}/{letter.lower()!r} to survive a netlist round-trip"
        )
    return name


def _format_number(value) -> str:
    """Exact (repr) float formatting; round-trips bit-identically."""
    return repr(float(value))


def _format_value(value) -> str:
    """An element value field: plain number or ``{...}`` expression."""
    if isinstance(value, Param):
        if not _IDENT_RE.fullmatch(value.name):
            raise NetlistError(
                f"parameter name {value.name!r} cannot be written in a "
                "{...} expression"
            )
        if value.scale == 1.0:
            return "{%s}" % value.name
        return "{%s*%s}" % (_format_number(value.scale), value.name)
    if isinstance(value, ParamAffine):
        parts = []
        for name, coeff in value.terms:
            if not _IDENT_RE.fullmatch(name):
                raise NetlistError(
                    f"parameter name {name!r} cannot be written in a "
                    "{...} expression"
                )
            parts.append(f"{_format_number(coeff)}*{name}")
        if value.const != 0.0:
            parts.append(_format_number(value.const))
        return "{%s}" % " + ".join(parts)
    return _format_number(value)


def _format_waveform(waveform: SourceWaveform) -> str:
    """A source's waveform tail in the parser's grammar."""
    if isinstance(waveform, Dc):
        return f"DC {_format_number(waveform.value)}"
    if isinstance(waveform, Step):
        fields = (waveform.v0, waveform.v1, waveform.t_delay, waveform.t_rise)
        return "STEP(%s)" % " ".join(_format_number(v) for v in fields)
    if isinstance(waveform, Pulse):
        fields = (
            waveform.v0,
            waveform.v1,
            waveform.t_delay,
            waveform.t_rise,
            waveform.t_fall,
            waveform.width,
            waveform.period,
        )
        return "PULSE(%s)" % " ".join(_format_number(v) for v in fields)
    if isinstance(waveform, Sine):
        fields = (
            waveform.offset,
            waveform.amplitude,
            waveform.frequency,
            waveform.t_delay,
        )
        return "SIN(%s)" % " ".join(_format_number(v) for v in fields)
    if isinstance(waveform, PiecewiseLinear):
        flat = [v for point in waveform.points for v in point]
        return "PWL(%s)" % " ".join(_format_number(v) for v in flat)
    raise NetlistError(
        f"waveform {type(waveform).__name__} has no netlist form"
    )


def _format_element(element: Element) -> str:
    """One element statement line (without trailing newline)."""
    prefixes = {
        Resistor: ("R", "resistor"),
        Capacitor: ("C", "capacitor"),
        Inductor: ("L", "inductor"),
        VoltageSource: ("V", "voltage source"),
        CurrentSource: ("I", "current source"),
        VoltageControlledVoltageSource: ("E", "VCVS"),
        VoltageControlledCurrentSource: ("G", "VCCS"),
        CurrentControlledVoltageSource: ("H", "CCVS"),
        CurrentControlledCurrentSource: ("F", "CCCS"),
    }
    try:
        letter, what = prefixes[type(element)]
    except KeyError:
        raise NetlistError(
            f"element {element.name!r} of type {type(element).__name__} "
            "has no netlist form"
        ) from None
    _check_prefix(element.name, letter, what)
    nodes = [
        _check_token(element.node_pos, "node"),
        _check_token(element.node_neg, "node"),
    ]
    head = f"{element.name} {' '.join(nodes)}"
    if isinstance(element, Resistor):
        return f"{head} {_format_value(element.value)}"
    if isinstance(element, Capacitor):
        tail = ""
        if element.initial_voltage != 0.0:
            tail = f" ic={_format_number(element.initial_voltage)}"
        return f"{head} {_format_value(element.value)}{tail}"
    if isinstance(element, Inductor):
        tail = ""
        if element.initial_current != 0.0:
            tail = f" ic={_format_number(element.initial_current)}"
        return f"{head} {_format_value(element.value)}{tail}"
    if isinstance(element, (VoltageSource, CurrentSource)):
        return f"{head} {_format_waveform(element.waveform)}"
    if isinstance(
        element, (VoltageControlledVoltageSource, VoltageControlledCurrentSource)
    ):
        gain = getattr(element, "gain", None)
        if gain is None:
            gain = element.transconductance
        ctrl = (
            _check_token(element.ctrl_pos, "control node"),
            _check_token(element.ctrl_neg, "control node"),
        )
        return f"{head} {' '.join(ctrl)} {_format_number(gain)}"
    gain = getattr(element, "gain", None)
    if gain is None:
        gain = element.transresistance
    ctrl_source = _check_token(element.ctrl_source, "control source")
    return f"{head} {ctrl_source} {_format_number(gain)}"
