"""Small-signal AC analysis.

Solves the phasor system ``(G + j*omega*C) X = B`` over a frequency sweep,
with every independent source replaced by its AC magnitude (unit for the
designated input source, zero for the rest -- the classic SPICE ``.AC``
semantics with a single stimulated source).

Each frequency point assembles ``G + j*omega*C`` directly in triplet
form and factors it through a pluggable
:class:`~repro.spice.backend.SimulationBackend`; no dense matrix is
ever rebuilt per frequency unless the dense backend itself is the best
fit.  The backend is resolved once per sweep from the (frequency
independent) union pattern of ``G`` and ``C``, so a 1000-segment ladder
sweep runs on the banded or sparse path end to end.

The primary use here is validation: the AC response of an ``n``-segment
ladder must match the cascaded lumped two-port of :mod:`repro.tline.abcd`
exactly, and must converge to the exact distributed line as ``n`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.errors import NetlistError, ParameterError, SimulationError
from repro.spice.backend import SimulationBackend, resolve_backend
from repro.spice.mna import CircuitTemplate, MnaStructure, build_mna
from repro.spice.netlist import Circuit, VoltageSource, canonical_node

__all__ = ["AcResult", "AcBatchResult", "ac_sweep", "ac_sweep_batch"]


@dataclass(frozen=True)
class AcResult:
    """Complex node spectra from an AC sweep."""

    omegas: np.ndarray
    states: np.ndarray  # shape (len(omegas), n_unknowns), complex
    node_index: dict[str, int]
    branch_index: dict[str, int]

    def voltage(self, node) -> np.ndarray:
        """Complex voltage spectrum of ``node``."""
        from repro.spice.netlist import GROUND, canonical_node

        name = canonical_node(node)
        if name == GROUND:
            return np.zeros_like(self.omegas, dtype=complex)
        try:
            return self.states[:, self.node_index[name]].copy()
        except KeyError:
            raise NetlistError(f"unknown node {name!r}") from None

    def current(self, element_name: str) -> np.ndarray:
        """Complex branch-current spectrum (V sources, inductors, ...)."""
        try:
            return self.states[:, self.branch_index[element_name]].copy()
        except KeyError:
            raise NetlistError(
                f"element {element_name!r} has no branch current"
            ) from None

    def transfer(self, node_out, node_in) -> np.ndarray:
        """``V(node_out) / V(node_in)`` across the sweep."""
        vin = self.voltage(node_in)
        if np.any(vin == 0):
            raise SimulationError("input node has zero AC voltage at some point")
        return self.voltage(node_out) / vin


def ac_sweep(
    circuit: Circuit,
    omegas,
    input_source: str | None = None,
    backend: SimulationBackend | str = "auto",
    model: str = "full",
    rom_order: int | None = None,
    rom_error_bound: float | None = None,
) -> AcResult:
    """Run an AC sweep over angular frequencies ``omegas``.

    Parameters
    ----------
    circuit:
        The netlist.  Exactly one voltage source is stimulated with unit
        magnitude; the others are shorted (zero AC value).
    omegas:
        Angular frequencies (rad/s); zero is allowed if the DC system is
        nonsingular.
    input_source:
        Name of the stimulated voltage source.  May be omitted when the
        circuit contains exactly one voltage source.
    backend:
        Linear-solver implementation (``"auto"``, ``"dense"``,
        ``"sparse"``, ``"banded"``, or a
        :class:`~repro.spice.backend.SimulationBackend` instance),
        shared by every frequency point.
    model:
        Evaluation-model tier: ``"full"`` (default; per-frequency
        factorizations of ``G + j*omega*C``), ``"reduced"`` (phasor
        solves on a PRIMA projection, see :mod:`repro.rom`), or
        ``"auto"`` (reduced for large systems when the exact relative
        residual at probe frequencies of the sweep stays under
        ``rom_error_bound``, full otherwise; the decision is recorded
        as a :class:`~repro.rom.model.ModelSelection`).
    rom_order:
        Reduced order ``q`` for the non-full tiers (default
        :data:`repro.rom.prima.DEFAULT_ORDER`).
    rom_error_bound:
        Residual bound the ``"auto"`` tier enforces before serving a
        reduced answer (default
        :data:`repro.rom.model.DEFAULT_ERROR_BOUND`).
    """
    from repro.rom.model import resolve_model

    model = resolve_model(model)
    omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
    with obs.span("ac.sweep", frequencies=omegas.size) as sp:
        system = build_mna(circuit)

        input_source = _resolve_input_source(circuit, input_source)
        input_row = system.current_row(input_source)
        if model != "full":
            from repro.rom.model import record_model_selection

            result, selection = _ac_reduced_scalar(
                system, omegas, input_row, backend,
                model, rom_order, rom_error_bound,
            )
            record_model_selection(selection)
            sp.set(model=selection.model, model_rule=selection.rule)
            if result is not None:
                return result
        b = np.zeros(system.size, dtype=complex)
        b[input_row] = 1.0

        # The sparsity pattern of G + jwC is the same at every frequency;
        # resolve the backend once on the union pattern, and reuse the
        # pattern-dependent work (RCM profile, CSC assembly map) across
        # every frequency point through one PatternFactorizer.
        pattern = system.combine(1.0, 1.0j)
        backend = resolve_backend(backend, pattern)
        factorizer = backend.factorizer(pattern)
        sp.set(n=system.size, backend=backend.name)
        obs.inc("spice.ac.runs")
        obs.inc("spice.ac.frequencies", omegas.size)
        g_data = system.g_coo.data.astype(complex)
        c_data = system.c_coo.data

        states = np.empty((omegas.size, system.size), dtype=complex)
        for k, w in enumerate(omegas):
            data = np.concatenate([g_data, 1j * w * c_data])
            try:
                states[k] = factorizer.refactorize(data).solve(b)
            except SimulationError as exc:
                raise SimulationError(
                    f"singular AC system at omega = {w:g}"
                ) from exc
        return AcResult(
            omegas=omegas,
            states=states,
            node_index=dict(system.node_index),
            branch_index=dict(system.branch_index),
        )


def _resolve_input_source(circuit: Circuit, input_source: str | None) -> str:
    """Pick (or validate) the stimulated voltage source's name."""
    v_sources = [e for e in circuit.elements if isinstance(e, VoltageSource)]
    if input_source is None:
        if len(v_sources) != 1:
            raise NetlistError(
                "input_source must be named when the circuit has "
                f"{len(v_sources)} voltage sources"
            )
        return v_sources[0].name
    if input_source not in {e.name for e in v_sources}:
        raise NetlistError(f"no voltage source named {input_source!r}")
    return input_source


def _probe_indices(n_freqs: int, limit: int = 8) -> np.ndarray:
    """Evenly spread probe indices into a frequency grid (ends included)."""
    if n_freqs <= limit:
        return np.arange(n_freqs, dtype=np.intp)
    return np.unique(np.linspace(0, n_freqs - 1, limit).astype(np.intp))


def _ac_reduced_scalar(
    system,
    omegas: np.ndarray,
    input_row: int,
    backend,
    model: str,
    rom_order: int | None,
    rom_error_bound: float | None,
):
    """Serve one AC sweep from the reduced tier, or decline.

    Returns ``(result, selection)``.  ``result`` is ``None`` when the
    sweep must run on the full phasor path instead: ``model="auto"``
    declines for small systems, failed projection builds, or residuals
    over the bound (all recorded in the selection's rule), while
    ``model="reduced"`` propagates build/solve errors to the caller.
    The error estimate is the exact relative residual
    ``||(G + jw C) V z - e_input||`` evaluated at up to 8 probe
    frequencies spread across the sweep itself (sparse matvecs only,
    see :meth:`~repro.rom.prima.ReducedSystem.ac_residuals`).
    """
    from repro import rom as rom_pkg

    n = system.size
    bound = (
        rom_pkg.DEFAULT_ERROR_BOUND
        if rom_error_bound is None
        else float(rom_error_bound)
    )
    if model == "auto" and n <= rom_pkg.ROM_SIZE_CUTOFF:
        return None, rom_pkg.ModelSelection("full", "auto-small-system", n)
    try:
        reduced = rom_pkg.prima_reduce(system, order=rom_order, backend=backend)
    except SimulationError:
        if model == "auto":
            return None, rom_pkg.ModelSelection("full", "auto-build-fallback", n)
        raise
    try:
        z = reduced.ac(input_row, omegas)
        states = reduced.reconstruct(z)
        probes = _probe_indices(omegas.size)
        estimate = float(
            np.max(reduced.ac_residuals(input_row, omegas[probes], z[probes]))
        )
        if not np.isfinite(estimate):
            raise SimulationError(
                "non-finite reduced AC residual; fall back to model='full'"
            )
    except SimulationError:
        if model == "auto":
            return None, rom_pkg.ModelSelection(
                "full", "auto-error-fallback", n, order=reduced.order,
                error_estimate=float("inf"), error_bound=bound,
            )
        raise
    if model == "auto" and not estimate <= bound:
        return None, rom_pkg.ModelSelection(
            "full", "auto-error-fallback", n, order=reduced.order,
            error_estimate=estimate, error_bound=bound,
        )
    selection = rom_pkg.ModelSelection(
        "reduced",
        "explicit" if model == "reduced" else "auto-within-bound",
        n,
        order=reduced.order,
        error_estimate=estimate,
        error_bound=bound,
    )
    reduced.selection = selection
    result = AcResult(
        omegas=omegas,
        states=states,
        node_index=dict(system.node_index),
        branch_index=dict(system.branch_index),
    )
    return result, selection


@dataclass(frozen=True)
class AcBatchResult:
    """Complex node spectra for a batch of structure-identical circuits.

    Attributes
    ----------
    omegas:
        The shared angular-frequency grid, shape ``(F,)``.
    states:
        Solutions of shape ``(B, F, R)`` where ``R`` is the number of
        recorded MNA rows (all of them unless ``record`` was given).
    structure:
        The shared :class:`~repro.spice.mna.MnaStructure`.
    recorded_rows:
        MNA row index of each recorded column, in column order.
    """

    omegas: np.ndarray
    states: np.ndarray
    structure: MnaStructure
    recorded_rows: tuple[int, ...]

    @property
    def n_points(self) -> int:
        """Number of batch points ``B``."""
        return self.states.shape[0]

    def _column(self, row: int) -> int:
        try:
            return self.recorded_rows.index(row)
        except ValueError:
            raise ParameterError(
                f"MNA row {row} was not recorded; pass it in record= "
                "(or record everything with record=None)"
            ) from None

    def voltage(self, node) -> np.ndarray:
        """Complex voltage spectra ``(B, F)`` of one node (ground is 0)."""
        from repro.spice.netlist import GROUND

        if canonical_node(node) == GROUND:
            return np.zeros(self.states.shape[:2], dtype=complex)
        col = self._column(self.structure.voltage_row(node))
        return self.states[:, :, col].copy()

    def current(self, element_name: str) -> np.ndarray:
        """Complex branch-current spectra ``(B, F)`` of one element."""
        col = self._column(self.structure.current_row(element_name))
        return self.states[:, :, col].copy()

    def transfer(self, node_out, node_in) -> np.ndarray:
        """``V(node_out) / V(node_in)`` per point, shape ``(B, F)``."""
        vin = self.voltage(node_in)
        if np.any(vin == 0):
            raise SimulationError("input node has zero AC voltage at some point")
        return self.voltage(node_out) / vin


def ac_sweep_batch(
    template: CircuitTemplate,
    params,
    omegas,
    input_source: str | None = None,
    backend: SimulationBackend | str = "auto",
    record: Sequence | None = None,
    model: str = "full",
    rom_order: int | None = None,
    rom_error_bound: float | None = None,
) -> AcBatchResult:
    """Run an AC sweep over a batch of structure-identical circuits.

    The stamp-once / re-value-many counterpart of :func:`ac_sweep`:
    the template's MNA structure, the backend choice, and the
    pattern-dependent factorization work are all shared across every
    ``(point, frequency)`` pair; each pair pays only a numeric
    refactorization of the revalued ``G + j*omega*C`` data.  Results
    match per-point :func:`ac_sweep` runs over ``template.bind(point)``
    to <= 1e-12 on every backend (pinned by the equivalence suite).

    Parameters
    ----------
    template:
        The parameterized circuit
        (:class:`~repro.spice.mna.CircuitTemplate`).
    params:
        Batch parameter values: a mapping of name to length-``B``
        columns (scalars broadcast) or a sequence of per-point dicts;
        template defaults fill missing names.
    omegas:
        Angular frequencies (rad/s), shared by every point.
    input_source:
        Stimulated voltage source name; may be omitted when the
        template has exactly one voltage source.
    backend:
        Linear-solver implementation, resolved once on the union
        pattern.
    record:
        Optional node names (or MNA row indices) to record; ``None``
        records every unknown.
    model, rom_order, rom_error_bound:
        Evaluation-model tier, as in :func:`ac_sweep`.  The reduced
        tier composes with the template split: the projection is built
        once per structure (cached across calls, enriched at the value
        box corners), every ``(point, frequency)`` pair is a dense
        ``q x q`` phasor solve, and under ``model="auto"`` individual
        points whose nested-suborder convergence defect exceeds the
        bound are transparently re-run on the full path.
    """
    from repro.rom.model import resolve_model
    from repro.spice.transient import _param_columns, _recorded_rows

    if not isinstance(template, CircuitTemplate):
        raise ParameterError(
            f"ac_sweep_batch needs a CircuitTemplate, got {template!r}"
        )
    model = resolve_model(model)
    omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
    structure, columns, n_points = _param_columns(template, params)

    with obs.span(
        "ac.batch", points=n_points, frequencies=omegas.size
    ) as sp:
        input_source = _resolve_input_source(template.circuit, input_source)
        input_row = structure.current_row(input_source)
        rec_rows = _recorded_rows(structure, record)
        if model != "full":
            reduced_result = _ac_batch_reduced(
                structure, columns, n_points, omegas, input_row, backend,
                rec_rows, model, rom_order, rom_error_bound, sp,
            )
            if reduced_result is not None:
                return reduced_result

        states, backend_name, shared_reuse = _ac_batch_full_states(
            structure, columns, omegas, input_row, backend, rec_rows
        )
        sp.set(n=structure.size, backend=backend_name)
        obs.inc("spice.ac.batch_runs")
        obs.inc("spice.ac.batch_points", n_points)
        obs.observe(
            "spice.ac.batch_width", n_points, buckets=obs.COUNT_BUCKETS
        )
        if shared_reuse:
            obs.inc("spice.ac.shared_sweep_reuse", shared_reuse)
        return AcBatchResult(
            omegas=omegas,
            states=states,
            structure=structure,
            recorded_rows=tuple(int(r) for r in rec_rows),
        )


def _ac_batch_full_states(
    structure: MnaStructure,
    columns,
    omegas: np.ndarray,
    input_row: int,
    backend,
    rec_rows: np.ndarray,
) -> tuple[np.ndarray, str, int]:
    """Full-MNA per-point AC spectra for one value batch.

    The revalue / per-point phasor loop shared by the ``model="full"``
    path of :func:`ac_sweep_batch` and the per-point fallback of the
    ``"auto"`` tier.  Returns ``(states, backend_name, shared_reuse)``
    with ``states`` of shape ``(B, F, R)``; the shared-sweep reuse
    count is tallied locally and reported by the caller so the
    per-point path stays free of instrumentation (OBS001).
    """
    g_data, c_data = structure.revalue_many(columns)
    n_points = g_data.shape[0]
    pattern = structure.combined_pattern()
    backend = resolve_backend(backend, pattern.scaled(1.0 + 0.0j))
    factorizer = backend.factorizer(pattern)
    b = np.zeros(structure.size, dtype=complex)
    b[input_row] = 1.0

    states = np.empty((n_points, omegas.size, rec_rows.size), dtype=complex)
    seen: dict[bytes, int] = {}
    shared_reuse = 0
    for j in range(n_points):
        key = g_data[j].tobytes() + c_data[j].tobytes()
        first = seen.setdefault(key, j)
        if first != j:
            states[j] = states[first]
            shared_reuse += 1
            continue
        g_j = g_data[j].astype(complex)
        c_j = c_data[j]
        for k, w in enumerate(omegas):
            data = np.concatenate([g_j, 1j * w * c_j])
            try:
                x = factorizer.refactorize(data).solve(b)
            except SimulationError as exc:
                raise SimulationError(
                    f"singular AC system at omega = {w:g} (batch point {j})"
                ) from exc
            states[j, k] = x[rec_rows]
    return states, backend.name, shared_reuse


def _ac_batch_solve(
    gq: np.ndarray, cq: np.ndarray, vq: np.ndarray, omegas: np.ndarray
) -> np.ndarray:
    """Stacked reduced phasor solves, one frequency at a time.

    ``gq``/``cq`` are ``(B, q, q)`` projected matrices, ``vq`` the
    shared projected stimulus ``(q,)``.  Looping over frequencies keeps
    the working set at one ``(B, q, q)`` complex block instead of
    materializing all ``B * F`` systems at once.  Returns reduced
    states of shape ``(B, F, q)``.
    """
    n_points, q = gq.shape[0], gq.shape[1]
    z = np.empty((n_points, omegas.size, q), dtype=complex)
    rhs = np.broadcast_to(vq, (n_points, q))[:, :, None]
    for k, w in enumerate(omegas):
        try:
            z[:, k, :] = np.linalg.solve(gq + 1j * w * cq, rhs)[:, :, 0]
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                f"singular reduced AC system at omega = {w:g}"
            ) from exc
    return z


def _ac_batch_reduced(
    structure: MnaStructure,
    columns,
    n_points: int,
    omegas: np.ndarray,
    input_row: int,
    backend,
    rec_rows: np.ndarray,
    model: str,
    rom_order: int | None,
    rom_error_bound: float | None,
    sp,
):
    """Serve a batched AC sweep from the reduced tier, or decline.

    Returns an :class:`AcBatchResult`, or ``None`` when the whole
    batch must run on the full path (``model="auto"`` on a small
    system or after a failed projection build).  The projection comes
    from :func:`repro.rom.prima.cached_reduced_template` at the value
    box midpoint, Krylov-enriched at the box corners, so repeated
    sweeps over one structure pay the build once; per-point projected
    matrices are ``O(groups * q^2)`` revaluations.  Under
    ``model="auto"`` each point's nested-suborder convergence defect
    (folded with the build-time moment error) gates the reduced
    answer, and points over the bound are transparently re-run through
    the full phasor loop and merged back.
    """
    from repro import rom as rom_pkg
    from repro.rom.model import record_model_selection

    size = structure.size
    bound = (
        rom_pkg.DEFAULT_ERROR_BOUND
        if rom_error_bound is None
        else float(rom_error_bound)
    )
    if model == "auto" and size <= rom_pkg.ROM_SIZE_CUTOFF:
        record_model_selection(
            rom_pkg.ModelSelection("full", "auto-small-system", size), n_points
        )
        sp.set(model="full", model_rule="auto-small-system")
        return None

    nominal, samples = rom_pkg.corner_samples(columns)
    try:
        reduced_template = rom_pkg.cached_reduced_template(
            structure, rom_order, nominal, backend=backend,
            sample_params=samples,
        )
    except SimulationError:
        if model == "auto":
            record_model_selection(
                rom_pkg.ModelSelection("full", "auto-build-fallback", size),
                n_points,
            )
            sp.set(model="full", model_rule="auto-build-fallback")
            return None
        raise

    rom = reduced_template.rom
    q = rom.order
    gq, cq = reduced_template.reduce_many(columns)
    vq = rom.projected_unit_rhs(input_row).astype(complex)
    try:
        z = _ac_batch_solve(gq, cq, vq, omegas)
    except SimulationError:
        if model == "auto":
            record_model_selection(
                rom_pkg.ModelSelection(
                    "full", "auto-error-fallback", size, order=q,
                    error_estimate=float("inf"), error_bound=bound,
                ),
                n_points,
            )
            sp.set(model="full", model_rule="auto-error-fallback")
            return None
        raise
    rec_basis = rom.basis[rec_rows]
    states = z @ rec_basis.T
    sp.set(n=size, order=q)

    if model == "reduced":
        if not np.all(np.isfinite(states)):
            raise SimulationError(
                "reduced batched AC solution is non-finite; raise rom_order "
                "or use model='full'"
            )
        selection = rom_pkg.ModelSelection(
            "reduced", "explicit", size, order=q,
            error_estimate=rom.moment_error, error_bound=bound,
        )
        rom.selection = selection
        record_model_selection(selection, n_points)
        sp.set(model="reduced", model_rule="explicit")
        return AcBatchResult(
            omegas=omegas,
            states=states,
            structure=structure,
            recorded_rows=tuple(int(r) for r in rec_rows),
        )

    # model == "auto": per-point nested-suborder convergence defect
    # (re-answering the sweep with the weakest basis direction removed
    # stays entirely in q-space), folded with the build-time moment
    # error unless the basis is snapshot-enriched.
    base_error = 0.0 if rom.snapshot_enriched else rom.moment_error
    estimates = np.full(n_points, base_error)
    q2 = rom.suborder()
    if q2 < q:
        try:
            z2 = _ac_batch_solve(
                gq[:, :q2, :q2], cq[:, :q2, :q2], vq[:q2], omegas
            )
            diff = np.max(np.abs(states - z2 @ rec_basis[:, :q2].T), axis=(1, 2))
            denom = np.max(np.abs(states), axis=(1, 2))
            defect = diff / np.where(denom > 0.0, denom, 1.0)
            estimates = np.maximum(estimates, defect)
        except SimulationError:
            estimates[:] = np.inf
    finite = np.all(np.isfinite(states), axis=(1, 2))
    estimates = np.where(finite, estimates, np.inf)

    bad = ~(estimates <= bound)
    n_bad = int(np.count_nonzero(bad))
    n_ok = n_points - n_bad
    if n_ok:
        selection = rom_pkg.ModelSelection(
            "reduced", "auto-within-bound", size, order=q,
            error_estimate=float(np.max(estimates[~bad])), error_bound=bound,
        )
        rom.selection = selection
        record_model_selection(selection, n_ok)
    if n_bad:
        worst = float(np.max(estimates[bad]))
        record_model_selection(
            rom_pkg.ModelSelection(
                "full", "auto-error-fallback", size, order=q,
                error_estimate=worst, error_bound=bound,
            ),
            n_bad,
        )
        sub_columns = {name: col[bad] for name, col in columns.items()}
        full_states, _backend_name, shared_reuse = _ac_batch_full_states(
            structure, sub_columns, omegas, input_row, backend, rec_rows
        )
        states[bad] = full_states
        if shared_reuse:
            obs.inc("spice.ac.shared_sweep_reuse", shared_reuse)
    sp.set(
        model="reduced" if n_ok else "full",
        model_rule="auto-within-bound" if n_ok else "auto-error-fallback",
        rom_fallbacks=n_bad,
    )
    return AcBatchResult(
        omegas=omegas,
        states=states,
        structure=structure,
        recorded_rows=tuple(int(r) for r in rec_rows),
    )
