"""Small-signal AC analysis.

Solves the phasor system ``(G + j*omega*C) X = B`` over a frequency sweep,
with every independent source replaced by its AC magnitude (unit for the
designated input source, zero for the rest -- the classic SPICE ``.AC``
semantics with a single stimulated source).

Each frequency point assembles ``G + j*omega*C`` directly in triplet
form and factors it through a pluggable
:class:`~repro.spice.backend.SimulationBackend`; no dense matrix is
ever rebuilt per frequency unless the dense backend itself is the best
fit.  The backend is resolved once per sweep from the (frequency
independent) union pattern of ``G`` and ``C``, so a 1000-segment ladder
sweep runs on the banded or sparse path end to end.

The primary use here is validation: the AC response of an ``n``-segment
ladder must match the cascaded lumped two-port of :mod:`repro.tline.abcd`
exactly, and must converge to the exact distributed line as ``n`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError, SimulationError
from repro.spice.backend import SimulationBackend, resolve_backend
from repro.spice.mna import build_mna
from repro.spice.netlist import Circuit, VoltageSource

__all__ = ["AcResult", "ac_sweep"]


@dataclass(frozen=True)
class AcResult:
    """Complex node spectra from an AC sweep."""

    omegas: np.ndarray
    states: np.ndarray  # shape (len(omegas), n_unknowns), complex
    node_index: dict[str, int]
    branch_index: dict[str, int]

    def voltage(self, node) -> np.ndarray:
        """Complex voltage spectrum of ``node``."""
        from repro.spice.netlist import GROUND, canonical_node

        name = canonical_node(node)
        if name == GROUND:
            return np.zeros_like(self.omegas, dtype=complex)
        try:
            return self.states[:, self.node_index[name]].copy()
        except KeyError:
            raise NetlistError(f"unknown node {name!r}") from None

    def current(self, element_name: str) -> np.ndarray:
        """Complex branch-current spectrum (V sources, inductors, ...)."""
        try:
            return self.states[:, self.branch_index[element_name]].copy()
        except KeyError:
            raise NetlistError(
                f"element {element_name!r} has no branch current"
            ) from None

    def transfer(self, node_out, node_in) -> np.ndarray:
        """``V(node_out) / V(node_in)`` across the sweep."""
        vin = self.voltage(node_in)
        if np.any(vin == 0):
            raise SimulationError("input node has zero AC voltage at some point")
        return self.voltage(node_out) / vin


def ac_sweep(
    circuit: Circuit,
    omegas,
    input_source: str | None = None,
    backend: SimulationBackend | str = "auto",
) -> AcResult:
    """Run an AC sweep over angular frequencies ``omegas``.

    Parameters
    ----------
    circuit:
        The netlist.  Exactly one voltage source is stimulated with unit
        magnitude; the others are shorted (zero AC value).
    omegas:
        Angular frequencies (rad/s); zero is allowed if the DC system is
        nonsingular.
    input_source:
        Name of the stimulated voltage source.  May be omitted when the
        circuit contains exactly one voltage source.
    backend:
        Linear-solver implementation (``"auto"``, ``"dense"``,
        ``"sparse"``, ``"banded"``, or a
        :class:`~repro.spice.backend.SimulationBackend` instance),
        shared by every frequency point.
    """
    omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
    system = build_mna(circuit)

    v_sources = [e for e in circuit.elements if isinstance(e, VoltageSource)]
    if input_source is None:
        if len(v_sources) != 1:
            raise NetlistError(
                "input_source must be named when the circuit has "
                f"{len(v_sources)} voltage sources"
            )
        input_source = v_sources[0].name
    elif input_source not in {e.name for e in v_sources}:
        raise NetlistError(f"no voltage source named {input_source!r}")

    b = np.zeros(system.size, dtype=complex)
    b[system.current_row(input_source)] = 1.0

    # The sparsity pattern of G + jwC is the same at every frequency;
    # resolve the backend once on the union pattern.
    backend = resolve_backend(backend, system.combine(1.0, 1.0j))

    states = np.empty((omegas.size, system.size), dtype=complex)
    for k, w in enumerate(omegas):
        matrix = system.combine(1.0, 1j * w)
        try:
            states[k] = backend.factorize(matrix).solve(b)
        except SimulationError as exc:
            raise SimulationError(f"singular AC system at omega = {w:g}") from exc
    return AcResult(
        omegas=omegas,
        states=states,
        node_index=dict(system.node_index),
        branch_index=dict(system.branch_index),
    )
