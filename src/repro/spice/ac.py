"""Small-signal AC analysis.

Solves the phasor system ``(G + j*omega*C) X = B`` over a frequency sweep,
with every independent source replaced by its AC magnitude (unit for the
designated input source, zero for the rest -- the classic SPICE ``.AC``
semantics with a single stimulated source).

Each frequency point assembles ``G + j*omega*C`` directly in triplet
form and factors it through a pluggable
:class:`~repro.spice.backend.SimulationBackend`; no dense matrix is
ever rebuilt per frequency unless the dense backend itself is the best
fit.  The backend is resolved once per sweep from the (frequency
independent) union pattern of ``G`` and ``C``, so a 1000-segment ladder
sweep runs on the banded or sparse path end to end.

The primary use here is validation: the AC response of an ``n``-segment
ladder must match the cascaded lumped two-port of :mod:`repro.tline.abcd`
exactly, and must converge to the exact distributed line as ``n`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.errors import NetlistError, ParameterError, SimulationError
from repro.spice.backend import SimulationBackend, resolve_backend
from repro.spice.mna import CircuitTemplate, MnaStructure, build_mna
from repro.spice.netlist import Circuit, VoltageSource, canonical_node

__all__ = ["AcResult", "AcBatchResult", "ac_sweep", "ac_sweep_batch"]


@dataclass(frozen=True)
class AcResult:
    """Complex node spectra from an AC sweep."""

    omegas: np.ndarray
    states: np.ndarray  # shape (len(omegas), n_unknowns), complex
    node_index: dict[str, int]
    branch_index: dict[str, int]

    def voltage(self, node) -> np.ndarray:
        """Complex voltage spectrum of ``node``."""
        from repro.spice.netlist import GROUND, canonical_node

        name = canonical_node(node)
        if name == GROUND:
            return np.zeros_like(self.omegas, dtype=complex)
        try:
            return self.states[:, self.node_index[name]].copy()
        except KeyError:
            raise NetlistError(f"unknown node {name!r}") from None

    def current(self, element_name: str) -> np.ndarray:
        """Complex branch-current spectrum (V sources, inductors, ...)."""
        try:
            return self.states[:, self.branch_index[element_name]].copy()
        except KeyError:
            raise NetlistError(
                f"element {element_name!r} has no branch current"
            ) from None

    def transfer(self, node_out, node_in) -> np.ndarray:
        """``V(node_out) / V(node_in)`` across the sweep."""
        vin = self.voltage(node_in)
        if np.any(vin == 0):
            raise SimulationError("input node has zero AC voltage at some point")
        return self.voltage(node_out) / vin


def ac_sweep(
    circuit: Circuit,
    omegas,
    input_source: str | None = None,
    backend: SimulationBackend | str = "auto",
) -> AcResult:
    """Run an AC sweep over angular frequencies ``omegas``.

    Parameters
    ----------
    circuit:
        The netlist.  Exactly one voltage source is stimulated with unit
        magnitude; the others are shorted (zero AC value).
    omegas:
        Angular frequencies (rad/s); zero is allowed if the DC system is
        nonsingular.
    input_source:
        Name of the stimulated voltage source.  May be omitted when the
        circuit contains exactly one voltage source.
    backend:
        Linear-solver implementation (``"auto"``, ``"dense"``,
        ``"sparse"``, ``"banded"``, or a
        :class:`~repro.spice.backend.SimulationBackend` instance),
        shared by every frequency point.
    """
    omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
    with obs.span("ac.sweep", frequencies=omegas.size) as sp:
        system = build_mna(circuit)

        input_source = _resolve_input_source(circuit, input_source)
        b = np.zeros(system.size, dtype=complex)
        b[system.current_row(input_source)] = 1.0

        # The sparsity pattern of G + jwC is the same at every frequency;
        # resolve the backend once on the union pattern, and reuse the
        # pattern-dependent work (RCM profile, CSC assembly map) across
        # every frequency point through one PatternFactorizer.
        pattern = system.combine(1.0, 1.0j)
        backend = resolve_backend(backend, pattern)
        factorizer = backend.factorizer(pattern)
        sp.set(n=system.size, backend=backend.name)
        obs.inc("spice.ac.runs")
        obs.inc("spice.ac.frequencies", omegas.size)
        g_data = system.g_coo.data.astype(complex)
        c_data = system.c_coo.data

        states = np.empty((omegas.size, system.size), dtype=complex)
        for k, w in enumerate(omegas):
            data = np.concatenate([g_data, 1j * w * c_data])
            try:
                states[k] = factorizer.refactorize(data).solve(b)
            except SimulationError as exc:
                raise SimulationError(
                    f"singular AC system at omega = {w:g}"
                ) from exc
        return AcResult(
            omegas=omegas,
            states=states,
            node_index=dict(system.node_index),
            branch_index=dict(system.branch_index),
        )


def _resolve_input_source(circuit: Circuit, input_source: str | None) -> str:
    """Pick (or validate) the stimulated voltage source's name."""
    v_sources = [e for e in circuit.elements if isinstance(e, VoltageSource)]
    if input_source is None:
        if len(v_sources) != 1:
            raise NetlistError(
                "input_source must be named when the circuit has "
                f"{len(v_sources)} voltage sources"
            )
        return v_sources[0].name
    if input_source not in {e.name for e in v_sources}:
        raise NetlistError(f"no voltage source named {input_source!r}")
    return input_source


@dataclass(frozen=True)
class AcBatchResult:
    """Complex node spectra for a batch of structure-identical circuits.

    Attributes
    ----------
    omegas:
        The shared angular-frequency grid, shape ``(F,)``.
    states:
        Solutions of shape ``(B, F, R)`` where ``R`` is the number of
        recorded MNA rows (all of them unless ``record`` was given).
    structure:
        The shared :class:`~repro.spice.mna.MnaStructure`.
    recorded_rows:
        MNA row index of each recorded column, in column order.
    """

    omegas: np.ndarray
    states: np.ndarray
    structure: MnaStructure
    recorded_rows: tuple[int, ...]

    @property
    def n_points(self) -> int:
        """Number of batch points ``B``."""
        return self.states.shape[0]

    def _column(self, row: int) -> int:
        try:
            return self.recorded_rows.index(row)
        except ValueError:
            raise ParameterError(
                f"MNA row {row} was not recorded; pass it in record= "
                "(or record everything with record=None)"
            ) from None

    def voltage(self, node) -> np.ndarray:
        """Complex voltage spectra ``(B, F)`` of one node (ground is 0)."""
        from repro.spice.netlist import GROUND

        if canonical_node(node) == GROUND:
            return np.zeros(self.states.shape[:2], dtype=complex)
        col = self._column(self.structure.voltage_row(node))
        return self.states[:, :, col].copy()

    def current(self, element_name: str) -> np.ndarray:
        """Complex branch-current spectra ``(B, F)`` of one element."""
        col = self._column(self.structure.current_row(element_name))
        return self.states[:, :, col].copy()

    def transfer(self, node_out, node_in) -> np.ndarray:
        """``V(node_out) / V(node_in)`` per point, shape ``(B, F)``."""
        vin = self.voltage(node_in)
        if np.any(vin == 0):
            raise SimulationError("input node has zero AC voltage at some point")
        return self.voltage(node_out) / vin


def ac_sweep_batch(
    template: CircuitTemplate,
    params,
    omegas,
    input_source: str | None = None,
    backend: SimulationBackend | str = "auto",
    record: Sequence | None = None,
) -> AcBatchResult:
    """Run an AC sweep over a batch of structure-identical circuits.

    The stamp-once / re-value-many counterpart of :func:`ac_sweep`:
    the template's MNA structure, the backend choice, and the
    pattern-dependent factorization work are all shared across every
    ``(point, frequency)`` pair; each pair pays only a numeric
    refactorization of the revalued ``G + j*omega*C`` data.  Results
    match per-point :func:`ac_sweep` runs over ``template.bind(point)``
    to <= 1e-12 on every backend (pinned by the equivalence suite).

    Parameters
    ----------
    template:
        The parameterized circuit
        (:class:`~repro.spice.mna.CircuitTemplate`).
    params:
        Batch parameter values: a mapping of name to length-``B``
        columns (scalars broadcast) or a sequence of per-point dicts;
        template defaults fill missing names.
    omegas:
        Angular frequencies (rad/s), shared by every point.
    input_source:
        Stimulated voltage source name; may be omitted when the
        template has exactly one voltage source.
    backend:
        Linear-solver implementation, resolved once on the union
        pattern.
    record:
        Optional node names (or MNA row indices) to record; ``None``
        records every unknown.
    """
    from repro.spice.transient import _param_columns, _recorded_rows

    if not isinstance(template, CircuitTemplate):
        raise ParameterError(
            f"ac_sweep_batch needs a CircuitTemplate, got {template!r}"
        )
    omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
    structure, columns, n_points = _param_columns(template, params)

    with obs.span(
        "ac.batch", points=n_points, frequencies=omegas.size
    ) as sp:
        input_source = _resolve_input_source(template.circuit, input_source)
        b = np.zeros(structure.size, dtype=complex)
        b[structure.current_row(input_source)] = 1.0

        g_data, c_data = structure.revalue_many(columns)
        pattern = structure.combined_pattern()
        backend = resolve_backend(backend, pattern.scaled(1.0 + 0.0j))
        factorizer = backend.factorizer(pattern)
        sp.set(n=structure.size, backend=backend.name)
        obs.inc("spice.ac.batch_runs")
        obs.inc("spice.ac.batch_points", n_points)
        obs.observe(
            "spice.ac.batch_width", n_points, buckets=obs.COUNT_BUCKETS
        )

        rec_rows = _recorded_rows(structure, record)
        states = np.empty((n_points, omegas.size, rec_rows.size), dtype=complex)

        # Points with identical revalued data share their whole sweep.
        # Reuse is tallied locally and reported once after the loop so
        # the per-point path stays free of instrumentation (OBS001).
        seen: dict[bytes, int] = {}
        shared_reuse = 0
        for j in range(n_points):
            key = g_data[j].tobytes() + c_data[j].tobytes()
            first = seen.setdefault(key, j)
            if first != j:
                states[j] = states[first]
                shared_reuse += 1
                continue
            g_j = g_data[j].astype(complex)
            c_j = c_data[j]
            for k, w in enumerate(omegas):
                data = np.concatenate([g_j, 1j * w * c_j])
                try:
                    x = factorizer.refactorize(data).solve(b)
                except SimulationError as exc:
                    raise SimulationError(
                        f"singular AC system at omega = {w:g} (batch point {j})"
                    ) from exc
                states[j, k] = x[rec_rows]
        if shared_reuse:
            obs.inc("spice.ac.shared_sweep_reuse", shared_reuse)
        return AcBatchResult(
            omegas=omegas,
            states=states,
            structure=structure,
            recorded_rows=tuple(int(r) for r in rec_rows),
        )
