"""DC operating point.

At DC, capacitors are open circuits and inductors are shorts; both limits
fall out naturally from solving ``G x = b(0)`` with the dynamic matrix
``C`` dropped (the inductor's branch row reduces to ``v+ - v- = 0``).

The solve goes through a pluggable
:class:`~repro.spice.backend.SimulationBackend` (dense LU, sparse LU,
or RCM-banded LU), so operating points of very long ladder chains stay
O(n) instead of O(n^3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.spice.backend import CooMatrix, SimulationBackend, combine, resolve_backend
from repro.spice.mna import MnaSystem, build_mna
from repro.spice.netlist import Circuit

__all__ = ["dc_operating_point", "DcSolution"]


class DcSolution:
    """Node voltages and branch currents at the DC operating point."""

    def __init__(self, system: MnaSystem, x: np.ndarray) -> None:
        self._system = system
        self._x = x

    def voltage(self, node) -> float:
        """DC voltage of ``node`` (ground returns 0)."""
        from repro.spice.netlist import GROUND, canonical_node

        if canonical_node(node) == GROUND:
            return 0.0
        return float(self._x[self._system.voltage_row(node)])

    def current(self, element_name: str) -> float:
        """DC branch current of a voltage source or inductor."""
        return float(self._x[self._system.current_row(element_name)])

    @property
    def vector(self) -> np.ndarray:
        """Raw MNA solution vector (copy)."""
        return self._x.copy()


def dc_operating_point(
    circuit: Circuit,
    time: float = 0.0,
    gmin: float = 0.0,
    backend: SimulationBackend | str = "auto",
) -> DcSolution:
    """Solve the DC operating point with sources held at ``t = time``.

    Parameters
    ----------
    circuit:
        The netlist to solve.
    time:
        Time at which source waveforms are evaluated.
    gmin:
        Optional tiny conductance added from every node to ground, the
        standard SPICE trick for floating (capacitor-only) nodes.  Zero by
        default; pass e.g. ``1e-12`` if the solve reports singularity.
    backend:
        Linear-solver implementation (``"auto"``, ``"dense"``,
        ``"sparse"``, ``"banded"``, or a
        :class:`~repro.spice.backend.SimulationBackend` instance).

    Raises
    ------
    SimulationError
        If the MNA matrix is singular (floating node, inductor loop...).
    """
    system = build_mna(circuit)
    g = system.g_coo
    if gmin:
        diag = np.arange(system.n_nodes, dtype=np.intp)
        g = combine(
            (1.0, g),
            (1.0, CooMatrix(diag, diag, np.full(diag.size, gmin), g.shape)),
        )
    backend = resolve_backend(backend, g)
    b = system.rhs(time)
    try:
        x = backend.factorize(g).solve(b)
    except SimulationError as exc:
        raise SimulationError(
            "singular DC system: check for floating nodes (capacitor-only "
            "islands) or voltage-source/inductor loops; a small gmin may help"
        ) from exc
    if not np.all(np.isfinite(x)):
        raise SimulationError("DC solution contains non-finite values")
    return DcSolution(system, x)
