"""Pluggable linear-solver backends for the MNA engine.

The MNA matrices of ladder-style interconnect circuits are sparse and,
after a bandwidth-reducing reordering, tightly *banded*: a chain of
``n`` PI segments yields a path graph whose reverse-Cuthill-McKee
profile is a handful of diagonals, while the naive unknown ordering
(all node voltages first, then all branch currents) scatters the
inductor-branch couplings to the far corner of the matrix.  A dense
LU factorization is therefore an O(n^3) / O(n^2)-per-solve detour for
a problem SPICE-class tools solve in O(n).

This module abstracts the "factor once, solve many" step behind
:class:`SimulationBackend` so transient, AC and DC analyses can share
one of three interchangeable implementations.  For revaluation-heavy
workloads (parameter sweeps over a fixed topology, AC sweeps over a
fixed pattern) each backend additionally exposes a
:class:`PatternFactorizer` via :meth:`SimulationBackend.factorizer`:
the structure-dependent work -- the RCM reordering and banded index
maps, the COO-to-CSC duplicate-summing map feeding SuperLU, the dense
scatter pattern -- is done once per sparsity pattern, and
:meth:`PatternFactorizer.refactorize` then accepts fresh COO ``data``
arrays and performs only the numeric factorization.  Factorizations
solve one right-hand side (:meth:`LinearFactorization.solve`) or a
whole ``(n, k)`` block at once (:meth:`LinearFactorization.solve_many`).

The three implementations:

``dense``
    :func:`scipy.linalg.lu_factor` on the materialized matrix -- the
    reference implementation, fastest for small systems where BLAS-3
    beats any sparse bookkeeping.

``sparse``
    ``scipy.sparse`` CSC + SuperLU (:func:`scipy.sparse.linalg.splu`)
    with its own fill-reducing ordering; the robust choice for large
    systems of arbitrary structure (coupled buses, meshes).

``banded``
    Reverse-Cuthill-McKee reordering + LAPACK ``*gbtrf``/``*gbtrs``.
    For ladder chains the permuted system is a narrow band solved in
    O(n * bw^2); the fastest path for the paper's workloads.

Matrices move through the module in backend-neutral triplet
(:class:`CooMatrix`) form; each backend materializes only the storage
format it needs.  :func:`resolve_backend` picks an implementation from
the system size and the RCM bandwidth when asked for ``"auto"``.

All backends report an exactly singular matrix uniformly by raising
:class:`~repro.errors.SimulationError` from :meth:`factorize`, so the
``initial="dc"`` / floating-node error paths behave identically no
matter which implementation is active.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse
from scipy.linalg import get_lapack_funcs
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro import obs
from repro.errors import ParameterError, SimulationError

__all__ = [
    "DENSE_SIZE_CUTOFF",
    "CooMatrix",
    "combine",
    "BandProfile",
    "LinearFactorization",
    "PatternFactorizer",
    "SimulationBackend",
    "BackendSelection",
    "DenseLuBackend",
    "SparseLuBackend",
    "BandedLuBackend",
    "BACKENDS",
    "resolve_backend",
    "rcm_band_profile",
]


def _count(op: str, backend: str, n: float = 1.0) -> None:
    """Gated solver-telemetry counter (``spice.backend.<op>{backend=}``)."""
    obs.inc(f"spice.backend.{op}", n, backend=backend)

#: Systems at or below this size always resolve to the dense backend:
#: one BLAS-3 factorization of a tiny matrix beats any sparse setup.
DENSE_SIZE_CUTOFF = 128


@dataclass(frozen=True)
class CooMatrix:
    """A square matrix in coordinate (triplet) form.

    Duplicate ``(row, col)`` entries are implicitly summed by every
    consumer (the standard COO convention), so assembly code may stamp
    the same position repeatedly.
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        rows = np.asarray(self.rows, dtype=np.intp)
        cols = np.asarray(self.cols, dtype=np.intp)
        dtype = complex if np.iscomplexobj(self.data) else float
        data = np.asarray(self.data, dtype=dtype)
        if not (rows.shape == cols.shape == data.shape) or rows.ndim != 1:
            raise ParameterError("rows, cols and data must be equal-length 1-D")
        n, m = self.shape
        if n != m:
            raise ParameterError(f"CooMatrix must be square, got {self.shape}")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "shape", (int(n), int(m)))

    @property
    def nnz(self) -> int:
        """Stored entry count (duplicates not collapsed)."""
        return self.data.size

    def scaled(self, factor) -> "CooMatrix":
        """``factor * self`` (complex factors promote the dtype)."""
        return CooMatrix(self.rows, self.cols, factor * self.data, self.shape)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=self.data.dtype)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    def to_csr(self) -> scipy.sparse.csr_matrix:
        """Materialize as CSR (for matvecs and graph analysis)."""
        return scipy.sparse.csr_matrix(
            (self.data, (self.rows, self.cols)), shape=self.shape
        )

    def to_csc(self) -> scipy.sparse.csc_matrix:
        """Materialize as CSC (for sparse LU factorization)."""
        return scipy.sparse.csc_matrix(
            (self.data, (self.rows, self.cols)), shape=self.shape
        )


def _compressed_dedup_map(
    major: np.ndarray, minor: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, int, np.ndarray, np.ndarray]:
    """Triplet-to-compressed-sparse index map for one frozen pattern.

    Sorts entry positions by ``(major, minor)`` axis (rows for CSR,
    columns for CSC), collapses duplicates, and returns
    ``(order, slot, n_unique, indices, indptr)``: feed a data array
    through :func:`_scatter_dedup` with ``order``/``slot`` to obtain
    canonical compressed-sparse data in one scatter-add.
    """
    order = np.lexsort((minor, major))
    major_sorted = major[order]
    minor_sorted = minor[order]
    if order.size:
        first = np.empty(order.size, dtype=bool)
        first[0] = True
        first[1:] = (np.diff(major_sorted) != 0) | (np.diff(minor_sorted) != 0)
    else:
        first = np.empty(0, dtype=bool)
    slot = np.cumsum(first) - 1 if order.size else order
    indices = minor_sorted[first].astype(np.int32, copy=False)
    counts = np.bincount(major_sorted[first], minlength=n)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int32, copy=False)
    return order, slot, int(first.sum()), indices, indptr


def _scatter_dedup(
    order: np.ndarray, slot: np.ndarray, n_unique: int, data: np.ndarray
) -> np.ndarray:
    """Accumulate triplet ``data`` into its deduplicated sparse slots."""
    data = np.asarray(data)
    if np.iscomplexobj(data):
        acc = np.zeros(n_unique, dtype=data.dtype)
        np.add.at(acc, slot, data[order])
        return acc
    return np.bincount(slot, weights=data[order], minlength=n_unique)


class _PatternCsr:
    """CSR assembly map for one COO pattern, reused across revaluations.

    ``scipy.sparse.csr_matrix`` construction from triplets re-sorts and
    re-deduplicates on every call; for revaluation loops over a frozen
    pattern this map hoists that work out, so each new ``data`` array
    becomes a canonical CSR matrix in one scatter-add.
    """

    def __init__(self, pattern: CooMatrix) -> None:
        self._shape = pattern.shape
        (
            self._order,
            self._slot,
            self._n_unique,
            self._indices,
            self._indptr,
        ) = _compressed_dedup_map(pattern.rows, pattern.cols, pattern.shape[0])

    def matrix(self, data: np.ndarray) -> scipy.sparse.csr_matrix:
        """Canonical CSR matrix for one revaluation of the pattern."""
        acc = _scatter_dedup(self._order, self._slot, self._n_unique, data)
        return scipy.sparse.csr_matrix(
            (acc, self._indices, self._indptr), shape=self._shape
        )


def combine(*terms: tuple[float, CooMatrix]) -> CooMatrix:
    """Weighted sum ``sum(w_k * A_k)`` of same-shape COO matrices.

    The result simply concatenates the scaled triplets; zero weights
    keep their matrix's sparsity *pattern* (as explicit zeros), which
    is exactly what a reused symbolic factorization wants.
    """
    if not terms:
        raise ParameterError("combine needs at least one (weight, matrix) term")
    shape = terms[0][1].shape
    if any(m.shape != shape for _, m in terms):
        raise ParameterError("combined matrices must share a shape")
    rows = np.concatenate([m.rows for _, m in terms])
    cols = np.concatenate([m.cols for _, m in terms])
    data = np.concatenate(
        [np.asarray(w * m.data) for w, m in terms]
    )
    return CooMatrix(rows, cols, data, shape)


@dataclass(frozen=True)
class BandProfile:
    """An RCM permutation and the resulting lower/upper bandwidths."""

    perm: np.ndarray
    kl: int
    ku: int

    @property
    def band_width(self) -> int:
        """Total stored diagonals of the permuted matrix."""
        return self.kl + self.ku + 1


def rcm_band_profile(matrix: CooMatrix) -> BandProfile:
    """Reverse-Cuthill-McKee profile of a matrix's sparsity pattern.

    The pattern is symmetrized internally (RCM operates on undirected
    graphs); the returned bandwidths describe ``A[perm][:, perm]``.
    """
    n = matrix.shape[0]
    if matrix.nnz == 0:
        return BandProfile(perm=np.arange(n, dtype=np.intp), kl=0, ku=0)
    pattern = scipy.sparse.csr_matrix(
        (np.ones(matrix.nnz), (matrix.rows, matrix.cols)), shape=matrix.shape
    )
    perm = np.asarray(reverse_cuthill_mckee(pattern, symmetric_mode=False))
    inverse = np.empty(n, dtype=np.intp)
    inverse[perm] = np.arange(n, dtype=np.intp)
    prows = inverse[matrix.rows]
    pcols = inverse[matrix.cols]
    kl = int(max(0, np.max(prows - pcols)))
    ku = int(max(0, np.max(pcols - prows)))
    return BandProfile(perm=perm, kl=kl, ku=ku)


class LinearFactorization(abc.ABC):
    """A factored matrix ready for repeated right-hand-side solves."""

    @abc.abstractmethod
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for one right-hand side."""

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A X = rhs`` for a block of right-hand sides.

        ``rhs`` has shape ``(n, k)`` (or ``(n,)``, treated as one
        column); the result has the same shape.  The base
        implementation loops over columns; the built-in backends
        override it with a single vectorized LAPACK/SuperLU call.
        """
        rhs = np.asarray(rhs)
        if rhs.ndim == 1:
            return self.solve(rhs)
        if rhs.shape[1] == 0:
            return rhs.copy()
        return np.stack(
            [self.solve(rhs[:, k]) for k in range(rhs.shape[1])], axis=1
        )


class PatternFactorizer(abc.ABC):
    """Per-pattern symbolic/structural state, reused across revaluations.

    Obtained from :meth:`SimulationBackend.factorizer` for one COO
    sparsity pattern (``rows``/``cols``/``shape``; the data of the
    matrix handed over is ignored).  Each :meth:`refactorize` call then
    maps a fresh ``data`` array -- same triplet order -- to a
    :class:`LinearFactorization`, repeating only the numeric work.
    """

    @abc.abstractmethod
    def refactorize(self, data: np.ndarray) -> LinearFactorization:
        """Numerically factor the pattern with new entry values.

        Raises
        ------
        SimulationError
            If the revalued matrix is exactly singular.
        """


class _OneShotFactorizer(PatternFactorizer):
    """Fallback factorizer: re-runs the backend's full factorize."""

    def __init__(self, backend: "SimulationBackend", pattern: CooMatrix) -> None:
        self._backend = backend
        self._pattern = pattern

    def refactorize(self, data: np.ndarray) -> LinearFactorization:
        matrix = CooMatrix(
            self._pattern.rows, self._pattern.cols, data, self._pattern.shape
        )
        return self._backend.factorize(matrix)


@dataclass(frozen=True)
class BackendSelection:
    """Why ``resolve_backend("auto")`` picked a backend (the evidence).

    Attached to the chosen backend (:attr:`SimulationBackend.selection`)
    and surfaced in its ``repr``, so "why dense here?" is answerable
    from any object that escaped the selection -- and recorded in the
    metrics registry (``spice.backend.auto_selected{backend=,rule=}``)
    while instrumentation is enabled.

    Attributes
    ----------
    backend:
        The chosen registry name (``dense``/``banded``/``sparse``).
    rule:
        Which decision rule fired: ``"small-system"`` (dense),
        ``"narrow-band"`` (banded) or ``"general-sparse"`` (fallback).
    size, nnz:
        Unknown count and stored-entry count of the deciding matrix.
    band_width, band_limit:
        RCM band width of the pattern and the ``max(24, n // 8)``
        threshold it was compared against; ``None`` when the size
        cutoff decided first (no RCM profile was computed).
    """

    backend: str
    rule: str
    size: int
    nnz: int
    band_width: int | None = None
    band_limit: int | None = None

    def reason(self) -> str:
        """One-line human-readable justification of the choice."""
        if self.rule == "small-system":
            return (
                f"n={self.size} <= dense cutoff {DENSE_SIZE_CUTOFF}"
            )
        comparison = "<=" if self.rule == "narrow-band" else ">"
        return (
            f"n={self.size}, rcm band {self.band_width} {comparison} "
            f"limit {self.band_limit}"
        )


class SimulationBackend(abc.ABC):
    """Strategy interface: how MNA linear systems are factored/solved."""

    #: Registry / user-facing name of the implementation.
    name: str = "abstract"

    #: The ``resolve_backend("auto")`` decision that produced this
    #: instance, or ``None`` for explicitly constructed backends.
    selection: BackendSelection | None = None

    @abc.abstractmethod
    def factorize(self, matrix: CooMatrix) -> LinearFactorization:
        """Factor ``matrix`` once for many solves.

        Raises
        ------
        SimulationError
            If the matrix is exactly singular.
        """

    def factorizer(self, pattern: CooMatrix) -> PatternFactorizer:
        """Structure-reusing factorizer for one sparsity pattern.

        The default implementation simply re-runs :meth:`factorize` per
        revaluation (correct for any backend); the built-in backends
        override it to hoist their pattern-dependent work -- RCM
        profiles and banded index maps, COO-to-CSC duplicate-summing
        maps, dense scatter indices -- out of the revaluation loop.
        """
        return _OneShotFactorizer(self, pattern)

    def __repr__(self) -> str:
        if self.selection is None:
            return f"{type(self).__name__}()"
        return (
            f"{type(self).__name__}(auto: {self.selection.reason()} "
            f"-> {self.selection.backend})"
        )


class _DenseFactorization(LinearFactorization):
    def __init__(self, lu: np.ndarray, piv: np.ndarray) -> None:
        self._lu = lu
        self._piv = piv

    def _solve(self, rhs: np.ndarray) -> np.ndarray:
        return scipy.linalg.lu_solve(
            (self._lu, self._piv), rhs, check_finite=False
        )

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        _count("solve", "dense")
        return self._solve(rhs)

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Single ``*getrs`` call over the whole ``(n, k)`` block."""
        rhs = np.asarray(rhs)
        _count("solve_many", "dense")
        _count("solve_many_rhs", "dense", rhs.shape[1] if rhs.ndim > 1 else 1)
        return self._solve(rhs)


class _DenseFactorizer(PatternFactorizer):
    def __init__(self, pattern: CooMatrix) -> None:
        self._rows = pattern.rows
        self._cols = pattern.cols
        self._shape = pattern.shape

    def refactorize(self, data: np.ndarray) -> LinearFactorization:
        _count("refactorize", "dense")
        data = np.asarray(data)
        dense = np.zeros(self._shape, dtype=data.dtype)
        np.add.at(dense, (self._rows, self._cols), data)
        with warnings.catch_warnings():
            # An exactly zero pivot makes lu_factor warn instead of
            # raise; singularity is detected (and raised) below.
            warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
            lu, piv = scipy.linalg.lu_factor(dense, check_finite=False)
        if self._shape[0] and np.any(np.diagonal(lu) == 0.0):
            raise SimulationError("singular matrix (dense LU: zero pivot)")
        return _DenseFactorization(lu, piv)


class DenseLuBackend(SimulationBackend):
    """Reference implementation: dense LAPACK LU (``*getrf``/``*getrs``)."""

    name = "dense"

    def factorize(self, matrix: CooMatrix) -> LinearFactorization:
        _count("factorize", "dense")
        return self.factorizer(matrix).refactorize(matrix.data)

    def factorizer(self, pattern: CooMatrix) -> PatternFactorizer:
        """Dense scatter pattern; refactorize rebuilds and refactors."""
        _count("factorizer", "dense")
        obs.observe(
            "spice.backend.pattern_nnz", pattern.nnz,
            buckets=obs.COUNT_BUCKETS, backend="dense",
        )
        return _DenseFactorizer(pattern)


class _SparseFactorization(LinearFactorization):
    def __init__(self, lu, dtype) -> None:
        self._lu = lu
        self._dtype = dtype

    def _solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._lu.solve(np.asarray(rhs, dtype=self._dtype))

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        _count("solve", "sparse")
        return self._solve(rhs)

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Single SuperLU solve over the whole ``(n, k)`` block."""
        rhs = np.asarray(rhs)
        _count("solve_many", "sparse")
        _count("solve_many_rhs", "sparse", rhs.shape[1] if rhs.ndim > 1 else 1)
        return self._solve(rhs)


class _SparseFactorizer(PatternFactorizer):
    """COO-to-CSC duplicate-summing map computed once per pattern.

    SuperLU's symbolic analysis is not exposed for reuse by SciPy, but
    the assembly that feeds it is: the lexsort of the triplets, the
    unique-entry index map, and the CSC ``indices``/``indptr`` arrays
    depend only on the pattern and are hoisted here; each refactorize
    is then one scatter-add plus the numeric ``splu``.
    """

    def __init__(self, pattern: CooMatrix) -> None:
        self._shape = pattern.shape
        # CSC: columns are the compressed (major) axis.
        (
            self._order,
            self._slot,
            self._n_unique,
            self._indices,
            self._indptr,
        ) = _compressed_dedup_map(pattern.cols, pattern.rows, pattern.shape[0])

    def refactorize(self, data: np.ndarray) -> LinearFactorization:
        _count("refactorize", "sparse")
        acc = _scatter_dedup(self._order, self._slot, self._n_unique, data)
        csc = scipy.sparse.csc_matrix(
            (acc, self._indices, self._indptr), shape=self._shape
        )
        try:
            lu = scipy.sparse.linalg.splu(csc)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise SimulationError(f"singular matrix (sparse LU: {exc})") from exc
        return _SparseFactorization(lu, csc.dtype)


class SparseLuBackend(SimulationBackend):
    """CSC + SuperLU (:func:`scipy.sparse.linalg.splu`)."""

    name = "sparse"

    def factorize(self, matrix: CooMatrix) -> LinearFactorization:
        _count("factorize", "sparse")
        return self.factorizer(matrix).refactorize(matrix.data)

    def factorizer(self, pattern: CooMatrix) -> PatternFactorizer:
        """CSC assembly map reused across revaluations of one pattern."""
        _count("factorizer", "sparse")
        obs.observe(
            "spice.backend.pattern_nnz", pattern.nnz,
            buckets=obs.COUNT_BUCKETS, backend="sparse",
        )
        return _SparseFactorizer(pattern)


class _BandedFactorization(LinearFactorization):
    def __init__(self, lu_band, piv, kl, ku, perm, gbtrs, dtype) -> None:
        self._lu_band = lu_band
        self._piv = piv
        self._kl = kl
        self._ku = ku
        self._perm = perm
        self._gbtrs = gbtrs
        self._dtype = dtype

    def _solve(self, rhs: np.ndarray) -> np.ndarray:
        permuted = np.asarray(rhs, dtype=self._dtype)[self._perm]
        x, info = self._gbtrs(
            self._lu_band, self._kl, self._ku, permuted, self._piv
        )
        if info != 0:  # pragma: no cover - gbtrf already vetted the factor
            raise SimulationError(f"banded solve failed (LAPACK info={info})")
        out = np.empty_like(x)
        out[self._perm] = x
        return out

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        _count("solve", "banded")
        return self._solve(rhs)

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Single multi-RHS ``*gbtrs`` call over the ``(n, k)`` block."""
        rhs = np.asarray(rhs)
        _count("solve_many", "banded")
        _count("solve_many_rhs", "banded", rhs.shape[1] if rhs.ndim > 1 else 1)
        return self._solve(rhs)


class BandedLuBackend(SimulationBackend):
    """RCM reordering + LAPACK banded LU (``*gbtrf``/``*gbtrs``).

    The permutation depends only on a matrix's sparsity pattern, so the
    last computed profile is memoized against the exact triplet pattern
    (byte-for-byte): an AC sweep factoring ``G + jwC`` per frequency
    reorders once, while a different-structure system (e.g. the bare
    ``G`` of a DC solve) safely triggers a fresh reordering.
    """

    name = "banded"

    def __init__(self) -> None:
        # One (key, profile) tuple, always replaced wholesale: a single
        # atomic attribute assignment keeps concurrent factorize calls
        # from ever pairing a key with another pattern's profile.
        self._memo: tuple[tuple, BandProfile] | None = None

    @staticmethod
    def _pattern_key(matrix: CooMatrix) -> tuple:
        return (matrix.shape, matrix.rows.tobytes(), matrix.cols.tobytes())

    def _profile_for(self, matrix: CooMatrix) -> BandProfile:
        key = self._pattern_key(matrix)
        memo = self._memo
        if memo is not None and memo[0] == key:
            return memo[1]
        profile = rcm_band_profile(matrix)
        self._memo = (key, profile)
        return profile

    def _seed_profile(self, matrix: CooMatrix, profile: BandProfile) -> None:
        """Adopt a profile already computed for ``matrix``'s pattern."""
        self._memo = (self._pattern_key(matrix), profile)

    def factorize(self, matrix: CooMatrix) -> LinearFactorization:
        _count("factorize", "banded")
        return self.factorizer(matrix).refactorize(matrix.data)

    def factorizer(self, pattern: CooMatrix) -> PatternFactorizer:
        """RCM profile and banded index map reused across revaluations."""
        profile = self._profile_for(pattern)
        _count("factorizer", "banded")
        obs.observe(
            "spice.backend.pattern_nnz", pattern.nnz,
            buckets=obs.COUNT_BUCKETS, backend="banded",
        )
        obs.observe(
            "spice.backend.band_width", profile.band_width,
            buckets=obs.COUNT_BUCKETS, backend="banded",
        )
        return _BandedFactorizer(pattern, profile)


class _BandedFactorizer(PatternFactorizer):
    """Permutation + banded scatter indices computed once per pattern."""

    def __init__(self, pattern: CooMatrix, profile: BandProfile) -> None:
        n = pattern.shape[0]
        inverse = np.empty(n, dtype=np.intp)
        inverse[profile.perm] = np.arange(n, dtype=np.intp)
        prows = inverse[pattern.rows]
        pcols = inverse[pattern.cols]
        kl, ku = profile.kl, profile.ku
        self._n = n
        self._kl = kl
        self._ku = ku
        self._perm = profile.perm
        # LAPACK banded storage with kl extra rows for pivoting fill:
        # A[i, j] lives at ab[kl + ku + i - j, j]; flattened indices feed
        # a bincount-based scatter-add (measurably faster than np.add.at
        # in revaluation-heavy loops).
        self._band_flat = (kl + ku + prows - pcols) * n + pcols

    def _assemble(self, data: np.ndarray) -> np.ndarray:
        kl, ku, n = self._kl, self._ku, self._n
        length = (2 * kl + ku + 1) * n
        if np.iscomplexobj(data):
            ab = np.bincount(
                self._band_flat, weights=data.real, minlength=length
            ) + 1j * np.bincount(
                self._band_flat, weights=data.imag, minlength=length
            )
        else:
            ab = np.bincount(self._band_flat, weights=data, minlength=length)
        return ab.reshape(2 * kl + ku + 1, n)

    def refactorize(self, data: np.ndarray) -> LinearFactorization:
        _count("refactorize", "banded")
        data = np.asarray(data)
        kl, ku = self._kl, self._ku
        ab = self._assemble(data)
        gbtrf, gbtrs = get_lapack_funcs(("gbtrf", "gbtrs"), (ab,))
        lu_band, piv, info = gbtrf(ab, kl, ku)
        if info > 0:
            raise SimulationError(
                f"singular matrix (banded LU: zero pivot at row {info})"
            )
        if info < 0:  # pragma: no cover - argument error, not data-driven
            raise SimulationError(f"banded factorization failed (info={info})")
        return _BandedFactorization(
            lu_band, piv, kl, ku, self._perm, gbtrs, ab.dtype
        )


#: Name -> class registry of the selectable implementations.
BACKENDS: dict[str, type[SimulationBackend]] = {
    backend.name: backend
    for backend in (DenseLuBackend, SparseLuBackend, BandedLuBackend)
}


def resolve_backend(
    backend: SimulationBackend | str,
    matrix: CooMatrix | None = None,
) -> SimulationBackend:
    """Resolve a backend request to a concrete implementation.

    Parameters
    ----------
    backend:
        A :class:`SimulationBackend` instance (returned unchanged), one
        of the registry names (``"dense"``, ``"sparse"``, ``"banded"``),
        or ``"auto"``.
    matrix:
        The system (or a same-pattern representative, e.g. the union
        pattern of an AC sweep) that will be factored.  Required for
        ``"auto"``, ignored otherwise.

    ``"auto"`` picks dense for systems of at most
    :data:`DENSE_SIZE_CUTOFF` unknowns; above that it computes the RCM
    bandwidth and picks banded when the band holds under ``size / 8``
    of the matrix (ladder chains reorder to a few diagonals), falling
    back to sparse for everything else.
    """
    if isinstance(backend, SimulationBackend):
        return backend
    if not isinstance(backend, str):
        raise ParameterError(
            f"backend must be a name or SimulationBackend, got {backend!r}"
        )
    name = backend.lower()
    if name == "auto":
        if matrix is None:
            raise ParameterError("backend='auto' needs the system matrix")
        n = matrix.shape[0]
        if n <= DENSE_SIZE_CUTOFF:
            chosen: SimulationBackend = DenseLuBackend()
            selection = BackendSelection(
                backend="dense", rule="small-system", size=n, nnz=matrix.nnz
            )
        else:
            profile = rcm_band_profile(matrix)
            band_limit = max(24, n // 8)
            if profile.band_width <= band_limit:
                chosen = BandedLuBackend()
                chosen._seed_profile(matrix, profile)
                selection = BackendSelection(
                    backend="banded",
                    rule="narrow-band",
                    size=n,
                    nnz=matrix.nnz,
                    band_width=profile.band_width,
                    band_limit=band_limit,
                )
            else:
                chosen = SparseLuBackend()
                selection = BackendSelection(
                    backend="sparse",
                    rule="general-sparse",
                    size=n,
                    nnz=matrix.nnz,
                    band_width=profile.band_width,
                    band_limit=band_limit,
                )
        chosen.selection = selection
        obs.inc(
            "spice.backend.auto_selected",
            backend=selection.backend,
            rule=selection.rule,
        )
        return chosen
    try:
        return BACKENDS[name]()
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ParameterError(
            f"unknown simulation backend {backend!r}; known: auto, {known}"
        ) from None
