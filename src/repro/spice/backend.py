"""Pluggable linear-solver backends for the MNA engine.

The MNA matrices of ladder-style interconnect circuits are sparse and,
after a bandwidth-reducing reordering, tightly *banded*: a chain of
``n`` PI segments yields a path graph whose reverse-Cuthill-McKee
profile is a handful of diagonals, while the naive unknown ordering
(all node voltages first, then all branch currents) scatters the
inductor-branch couplings to the far corner of the matrix.  A dense
LU factorization is therefore an O(n^3) / O(n^2)-per-solve detour for
a problem SPICE-class tools solve in O(n).

This module abstracts the "factor once, solve many" step behind
:class:`SimulationBackend` so transient, AC and DC analyses can share
one of three interchangeable implementations:

``dense``
    :func:`scipy.linalg.lu_factor` on the materialized matrix -- the
    reference implementation, fastest for small systems where BLAS-3
    beats any sparse bookkeeping.

``sparse``
    ``scipy.sparse`` CSC + SuperLU (:func:`scipy.sparse.linalg.splu`)
    with its own fill-reducing ordering; the robust choice for large
    systems of arbitrary structure (coupled buses, meshes).

``banded``
    Reverse-Cuthill-McKee reordering + LAPACK ``*gbtrf``/``*gbtrs``.
    For ladder chains the permuted system is a narrow band solved in
    O(n * bw^2); the fastest path for the paper's workloads.

Matrices move through the module in backend-neutral triplet
(:class:`CooMatrix`) form; each backend materializes only the storage
format it needs.  :func:`resolve_backend` picks an implementation from
the system size and the RCM bandwidth when asked for ``"auto"``.

All backends report an exactly singular matrix uniformly by raising
:class:`~repro.errors.SimulationError` from :meth:`factorize`, so the
``initial="dc"`` / floating-node error paths behave identically no
matter which implementation is active.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse
from scipy.linalg import get_lapack_funcs
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.errors import ParameterError, SimulationError

__all__ = [
    "CooMatrix",
    "LinearFactorization",
    "SimulationBackend",
    "DenseLuBackend",
    "SparseLuBackend",
    "BandedLuBackend",
    "BACKENDS",
    "resolve_backend",
    "rcm_band_profile",
]

#: Systems at or below this size always resolve to the dense backend:
#: one BLAS-3 factorization of a tiny matrix beats any sparse setup.
DENSE_SIZE_CUTOFF = 128


@dataclass(frozen=True)
class CooMatrix:
    """A square matrix in coordinate (triplet) form.

    Duplicate ``(row, col)`` entries are implicitly summed by every
    consumer (the standard COO convention), so assembly code may stamp
    the same position repeatedly.
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        rows = np.asarray(self.rows, dtype=np.intp)
        cols = np.asarray(self.cols, dtype=np.intp)
        dtype = complex if np.iscomplexobj(self.data) else float
        data = np.asarray(self.data, dtype=dtype)
        if not (rows.shape == cols.shape == data.shape) or rows.ndim != 1:
            raise ParameterError("rows, cols and data must be equal-length 1-D")
        n, m = self.shape
        if n != m:
            raise ParameterError(f"CooMatrix must be square, got {self.shape}")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "shape", (int(n), int(m)))

    @property
    def nnz(self) -> int:
        """Stored entry count (duplicates not collapsed)."""
        return self.data.size

    def scaled(self, factor) -> "CooMatrix":
        """``factor * self`` (complex factors promote the dtype)."""
        return CooMatrix(self.rows, self.cols, factor * self.data, self.shape)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=self.data.dtype)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    def to_csr(self) -> scipy.sparse.csr_matrix:
        """Materialize as CSR (for matvecs and graph analysis)."""
        return scipy.sparse.csr_matrix(
            (self.data, (self.rows, self.cols)), shape=self.shape
        )

    def to_csc(self) -> scipy.sparse.csc_matrix:
        """Materialize as CSC (for sparse LU factorization)."""
        return scipy.sparse.csc_matrix(
            (self.data, (self.rows, self.cols)), shape=self.shape
        )


def combine(*terms: tuple[float, CooMatrix]) -> CooMatrix:
    """Weighted sum ``sum(w_k * A_k)`` of same-shape COO matrices.

    The result simply concatenates the scaled triplets; zero weights
    keep their matrix's sparsity *pattern* (as explicit zeros), which
    is exactly what a reused symbolic factorization wants.
    """
    if not terms:
        raise ParameterError("combine needs at least one (weight, matrix) term")
    shape = terms[0][1].shape
    if any(m.shape != shape for _, m in terms):
        raise ParameterError("combined matrices must share a shape")
    rows = np.concatenate([m.rows for _, m in terms])
    cols = np.concatenate([m.cols for _, m in terms])
    data = np.concatenate(
        [np.asarray(w * m.data) for w, m in terms]
    )
    return CooMatrix(rows, cols, data, shape)


@dataclass(frozen=True)
class BandProfile:
    """An RCM permutation and the resulting lower/upper bandwidths."""

    perm: np.ndarray
    kl: int
    ku: int

    @property
    def band_width(self) -> int:
        """Total stored diagonals of the permuted matrix."""
        return self.kl + self.ku + 1


def rcm_band_profile(matrix: CooMatrix) -> BandProfile:
    """Reverse-Cuthill-McKee profile of a matrix's sparsity pattern.

    The pattern is symmetrized internally (RCM operates on undirected
    graphs); the returned bandwidths describe ``A[perm][:, perm]``.
    """
    n = matrix.shape[0]
    if matrix.nnz == 0:
        return BandProfile(perm=np.arange(n, dtype=np.intp), kl=0, ku=0)
    pattern = scipy.sparse.csr_matrix(
        (np.ones(matrix.nnz), (matrix.rows, matrix.cols)), shape=matrix.shape
    )
    perm = np.asarray(reverse_cuthill_mckee(pattern, symmetric_mode=False))
    inverse = np.empty(n, dtype=np.intp)
    inverse[perm] = np.arange(n, dtype=np.intp)
    prows = inverse[matrix.rows]
    pcols = inverse[matrix.cols]
    kl = int(max(0, np.max(prows - pcols)))
    ku = int(max(0, np.max(pcols - prows)))
    return BandProfile(perm=perm, kl=kl, ku=ku)


class LinearFactorization(abc.ABC):
    """A factored matrix ready for repeated right-hand-side solves."""

    @abc.abstractmethod
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for one right-hand side."""


class SimulationBackend(abc.ABC):
    """Strategy interface: how MNA linear systems are factored/solved."""

    #: Registry / user-facing name of the implementation.
    name: str = "abstract"

    @abc.abstractmethod
    def factorize(self, matrix: CooMatrix) -> LinearFactorization:
        """Factor ``matrix`` once for many solves.

        Raises
        ------
        SimulationError
            If the matrix is exactly singular.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _DenseFactorization(LinearFactorization):
    def __init__(self, lu: np.ndarray, piv: np.ndarray) -> None:
        self._lu = lu
        self._piv = piv

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return scipy.linalg.lu_solve(
            (self._lu, self._piv), rhs, check_finite=False
        )


class DenseLuBackend(SimulationBackend):
    """Reference implementation: dense LAPACK LU (``*getrf``/``*getrs``)."""

    name = "dense"

    def factorize(self, matrix: CooMatrix) -> LinearFactorization:
        dense = matrix.to_dense()
        with warnings.catch_warnings():
            # An exactly zero pivot makes lu_factor warn instead of
            # raise; singularity is detected (and raised) below.
            warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
            lu, piv = scipy.linalg.lu_factor(dense, check_finite=False)
        if matrix.shape[0] and np.any(np.diagonal(lu) == 0.0):
            raise SimulationError("singular matrix (dense LU: zero pivot)")
        return _DenseFactorization(lu, piv)


class _SparseFactorization(LinearFactorization):
    def __init__(self, lu, dtype) -> None:
        self._lu = lu
        self._dtype = dtype

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._lu.solve(np.asarray(rhs, dtype=self._dtype))


class SparseLuBackend(SimulationBackend):
    """CSC + SuperLU (:func:`scipy.sparse.linalg.splu`)."""

    name = "sparse"

    def factorize(self, matrix: CooMatrix) -> LinearFactorization:
        csc = matrix.to_csc()
        try:
            lu = scipy.sparse.linalg.splu(csc)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise SimulationError(f"singular matrix (sparse LU: {exc})") from exc
        return _SparseFactorization(lu, csc.dtype)


class _BandedFactorization(LinearFactorization):
    def __init__(self, lu_band, piv, kl, ku, perm, gbtrs, dtype) -> None:
        self._lu_band = lu_band
        self._piv = piv
        self._kl = kl
        self._ku = ku
        self._perm = perm
        self._gbtrs = gbtrs
        self._dtype = dtype

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        permuted = np.asarray(rhs, dtype=self._dtype)[self._perm]
        x, info = self._gbtrs(
            self._lu_band, self._kl, self._ku, permuted, self._piv
        )
        if info != 0:  # pragma: no cover - gbtrf already vetted the factor
            raise SimulationError(f"banded solve failed (LAPACK info={info})")
        out = np.empty_like(x)
        out[self._perm] = x
        return out


class BandedLuBackend(SimulationBackend):
    """RCM reordering + LAPACK banded LU (``*gbtrf``/``*gbtrs``).

    The permutation depends only on a matrix's sparsity pattern, so the
    last computed profile is memoized against the exact triplet pattern
    (byte-for-byte): an AC sweep factoring ``G + jwC`` per frequency
    reorders once, while a different-structure system (e.g. the bare
    ``G`` of a DC solve) safely triggers a fresh reordering.
    """

    name = "banded"

    def __init__(self) -> None:
        # One (key, profile) tuple, always replaced wholesale: a single
        # atomic attribute assignment keeps concurrent factorize calls
        # from ever pairing a key with another pattern's profile.
        self._memo: tuple[tuple, BandProfile] | None = None

    @staticmethod
    def _pattern_key(matrix: CooMatrix) -> tuple:
        return (matrix.shape, matrix.rows.tobytes(), matrix.cols.tobytes())

    def _profile_for(self, matrix: CooMatrix) -> BandProfile:
        key = self._pattern_key(matrix)
        memo = self._memo
        if memo is not None and memo[0] == key:
            return memo[1]
        profile = rcm_band_profile(matrix)
        self._memo = (key, profile)
        return profile

    def _seed_profile(self, matrix: CooMatrix, profile: BandProfile) -> None:
        """Adopt a profile already computed for ``matrix``'s pattern."""
        self._memo = (self._pattern_key(matrix), profile)

    def factorize(self, matrix: CooMatrix) -> LinearFactorization:
        n = matrix.shape[0]
        profile = self._profile_for(matrix)
        inverse = np.empty(n, dtype=np.intp)
        inverse[profile.perm] = np.arange(n, dtype=np.intp)
        prows = inverse[matrix.rows]
        pcols = inverse[matrix.cols]
        kl, ku = profile.kl, profile.ku
        # LAPACK banded storage with kl extra rows for pivoting fill:
        # A[i, j] lives at ab[kl + ku + i - j, j].
        ab = np.zeros((2 * kl + ku + 1, n), dtype=matrix.data.dtype)
        np.add.at(ab, (kl + ku + prows - pcols, pcols), matrix.data)
        gbtrf, gbtrs = get_lapack_funcs(("gbtrf", "gbtrs"), (ab,))
        lu_band, piv, info = gbtrf(ab, kl, ku)
        if info > 0:
            raise SimulationError(
                f"singular matrix (banded LU: zero pivot at row {info})"
            )
        if info < 0:  # pragma: no cover - argument error, not data-driven
            raise SimulationError(f"banded factorization failed (info={info})")
        return _BandedFactorization(
            lu_band, piv, kl, ku, profile.perm, gbtrs, ab.dtype
        )


#: Name -> class registry of the selectable implementations.
BACKENDS: dict[str, type[SimulationBackend]] = {
    backend.name: backend
    for backend in (DenseLuBackend, SparseLuBackend, BandedLuBackend)
}


def resolve_backend(
    backend: SimulationBackend | str,
    matrix: CooMatrix | None = None,
) -> SimulationBackend:
    """Resolve a backend request to a concrete implementation.

    Parameters
    ----------
    backend:
        A :class:`SimulationBackend` instance (returned unchanged), one
        of the registry names (``"dense"``, ``"sparse"``, ``"banded"``),
        or ``"auto"``.
    matrix:
        The system (or a same-pattern representative, e.g. the union
        pattern of an AC sweep) that will be factored.  Required for
        ``"auto"``, ignored otherwise.

    ``"auto"`` picks dense for systems of at most
    :data:`DENSE_SIZE_CUTOFF` unknowns; above that it computes the RCM
    bandwidth and picks banded when the band holds under ``size / 8``
    of the matrix (ladder chains reorder to a few diagonals), falling
    back to sparse for everything else.
    """
    if isinstance(backend, SimulationBackend):
        return backend
    if not isinstance(backend, str):
        raise ParameterError(
            f"backend must be a name or SimulationBackend, got {backend!r}"
        )
    name = backend.lower()
    if name == "auto":
        if matrix is None:
            raise ParameterError("backend='auto' needs the system matrix")
        n = matrix.shape[0]
        if n <= DENSE_SIZE_CUTOFF:
            return DenseLuBackend()
        profile = rcm_band_profile(matrix)
        if profile.band_width <= max(24, n // 8):
            backend = BandedLuBackend()
            backend._seed_profile(matrix, profile)
            return backend
        return SparseLuBackend()
    try:
        return BACKENDS[name]()
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ParameterError(
            f"unknown simulation backend {backend!r}; known: auto, {known}"
        ) from None
