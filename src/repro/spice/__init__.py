"""SPICE-class lumped circuit simulation substrate.

This subpackage stands in for AS/X, the IBM dynamic circuit simulator the
paper validates against.  It provides:

- :mod:`repro.spice.netlist`    -- circuit description (R, L, C, sources),
  including :class:`~repro.spice.netlist.Param` slots for symbolic
  element values,
- :mod:`repro.spice.mna`        -- Modified Nodal Analysis assembly in
  backend-neutral triplet (COO) form, split into a structural pass
  (:class:`~repro.spice.mna.MnaStructure`,
  :class:`~repro.spice.mna.CircuitTemplate`) and a cheap revaluation
  pass for value-only parameter changes; dense matrices only on demand,
- :mod:`repro.spice.backend`    -- pluggable linear-solver backends:
  dense LU (reference), ``scipy.sparse`` SuperLU, and an RCM-reordered
  banded LAPACK path for ladder chains, with ``"auto"`` selection by
  system size and bandwidth, pattern-reusing
  :class:`~repro.spice.backend.PatternFactorizer` revaluations, and
  multi-RHS block solves,
- :mod:`repro.spice.dc`         -- DC operating point,
- :mod:`repro.spice.transient`  -- backward-Euler / trapezoidal transient
  (one factorization reused across every step; the grid always ends
  exactly at ``t_stop``), plus lockstep batched stepping of
  structure-identical parameter points
  (:func:`~repro.spice.transient.simulate_transient_batch`),
- :mod:`repro.spice.ac`         -- small-signal frequency sweeps (triplet
  assembly per frequency, no dense rebuilds) with a batched counterpart
  (:func:`~repro.spice.ac.ac_sweep_batch`),
- :mod:`repro.spice.statespace` -- exact matrix-exponential integration of
  LTI state-space models,
- :mod:`repro.spice.ladder`     -- lumped-segment approximations of the
  distributed RLC line (the workload of every experiment in the paper),
- :mod:`repro.spice.parser`     -- SPICE-like text netlist frontend:
  :func:`~repro.spice.parser.parse_netlist` turns ``.cir`` text (with
  ``.param`` defaults and ``{expr}`` parameter slots) into the same
  :class:`~repro.spice.netlist.Circuit` objects the programmatic API
  builds, and :meth:`~repro.spice.netlist.Circuit.to_netlist` goes the
  other way.

The distributed line of the paper is simulated here as an ``n``-segment
ladder; tests drive ``n`` up until the 50% delay converges and compare
against the exact frequency-domain solution in :mod:`repro.tline`.  The
transient/AC/DC entry points all take a ``backend=`` argument
(``"auto"`` | ``"dense"`` | ``"sparse"`` | ``"banded"`` | a
:class:`~repro.spice.backend.SimulationBackend` instance), which lets
simulator-backed sweeps scale to 1000+-segment lines.
"""

from repro.spice.backend import (
    BACKENDS,
    BandedLuBackend,
    CooMatrix,
    DenseLuBackend,
    PatternFactorizer,
    SimulationBackend,
    SparseLuBackend,
    resolve_backend,
)
from repro.spice.ladder import (
    LadderSpec,
    LadderTopology,
    build_ladder_circuit,
    build_ladder_state_space,
    build_ladder_template,
)
from repro.spice.mna import (
    CircuitTemplate,
    MnaStructure,
    MnaSystem,
    build_mna,
    build_mna_structure,
)
from repro.spice.netlist import (
    Capacitor,
    Circuit,
    CurrentSource,
    Inductor,
    Param,
    ParamAffine,
    PiecewiseLinear,
    Pulse,
    Resistor,
    Sine,
    Step,
    VoltageSource,
)
from repro.spice.parser import (
    NetlistSyntaxError,
    ParsedNetlist,
    parse_netlist,
    parse_netlist_file,
    parse_spice_number,
    suggest_transient_window,
)
from repro.spice.transient import (
    TransientBatchResult,
    TransientResult,
    simulate_transient,
    simulate_transient_batch,
)
from repro.spice.statespace import StateSpace, simulate_step
from repro.spice.dc import dc_operating_point
from repro.spice.ac import AcBatchResult, ac_sweep, ac_sweep_batch

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Step",
    "Pulse",
    "Sine",
    "PiecewiseLinear",
    "Param",
    "ParamAffine",
    "NetlistSyntaxError",
    "ParsedNetlist",
    "parse_netlist",
    "parse_netlist_file",
    "parse_spice_number",
    "suggest_transient_window",
    "CircuitTemplate",
    "MnaStructure",
    "MnaSystem",
    "build_mna",
    "build_mna_structure",
    "simulate_transient",
    "simulate_transient_batch",
    "TransientResult",
    "TransientBatchResult",
    "StateSpace",
    "simulate_step",
    "dc_operating_point",
    "ac_sweep",
    "ac_sweep_batch",
    "AcBatchResult",
    "LadderSpec",
    "LadderTopology",
    "build_ladder_circuit",
    "build_ladder_template",
    "build_ladder_state_space",
    "SimulationBackend",
    "PatternFactorizer",
    "DenseLuBackend",
    "SparseLuBackend",
    "BandedLuBackend",
    "BACKENDS",
    "CooMatrix",
    "resolve_backend",
]
