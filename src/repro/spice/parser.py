"""SPICE-like text netlist frontend.

Parses the classic element-per-line netlist dialect into the existing
:class:`~repro.spice.netlist.Circuit`, which then feeds the COO
:func:`~repro.spice.mna.build_mna_structure` path unchanged -- every
solver backend, template revaluation, and batch analysis serves parsed
circuits exactly as it serves the programmatic builders.

Supported statements (see ``docs/netlist.md`` for the full grammar)::

    * comment                      ; trailing comments with ';' or '$'
    R1 in mid 50                   resistor (SPICE unit suffixes: 2.2k, 1u)
    C1 mid 0 1p ic=0.5             capacitor, optional initial voltage
    L1 mid out 10n ic=1m           inductor, optional initial current
    V1 in 0 STEP(0 1)              sources: DC / STEP / PULSE / SIN / PWL
    I1 0 out DC 1m                 current source
    K1 L1 L2 0.6                   mutual inductance (coupling k)
    E1 out 0 a b 2.0               VCVS; G/H/F likewise
    W1 n1 n2                       ideal wire: merges the two nodes
    R2 n1 n2 0                     a zero-ohm resistor is a wire too
    .param rt=120 ct=2p            default values for {...} parameters
    Rl a b {rt/2}                  parameterized values -> Param slots
    + 					continuation lines start with '+'
    .end

Ground is node ``0`` (aliases ``gnd``/``GND``/``ground``).  Wires (and
zero-ohm resistors) are collapsed *before* stamping with a union-find
pass over the node names: each connected class of shorted nodes is
replaced by one representative (ground wins; otherwise the first name
seen in the file), so the MNA system never sees the redundant nodes.

``{...}`` value expressions build the existing symbolic slots: a free
name becomes a :class:`~repro.spice.netlist.Param`, affine combinations
(``{ct/2 + cl}``) become :class:`~repro.spice.netlist.ParamAffine`, and
``.param`` directives supply *default* values -- the parsed result can
be bound concrete (:meth:`ParsedNetlist.bind`) or used as a
:class:`~repro.spice.mna.CircuitTemplate`
(:meth:`ParsedNetlist.template`) for batched sweeps.

Syntax errors carry their position: :class:`NetlistSyntaxError` knows
the 1-based line number, the column, and the offending line, and its
message embeds all three.

The module doubles as the fixture-corpus smoke runner::

    python -m repro.spice.parser tests/netlists --summary corpus.json

parses every ``.cir`` file, runs a short transient on each, and writes
a JSON summary document (the CI job uploads it as an artifact).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import NetlistError
from repro.spice.netlist import (
    Circuit,
    Dc,
    Param,
    ParamAffine,
    PiecewiseLinear,
    Pulse,
    Sine,
    SourceWaveform,
    Step,
    canonical_node,
    is_parametric,
)

__all__ = [
    "NetlistSyntaxError",
    "ParsedNetlist",
    "UnionFind",
    "parse_netlist",
    "parse_netlist_file",
    "parse_spice_number",
    "parse_statement",
    "suggest_transient_window",
    "run_corpus",
    "main",
]


class NetlistSyntaxError(NetlistError):
    """A malformed netlist statement, with its source position.

    Attributes
    ----------
    line_no:
        1-based line number of the offending statement (the first
        physical line of a continued statement), or ``None`` when the
        error is not tied to one line (e.g. a connectivity failure).
    column:
        1-based column of the offending token, or ``None``.
    line:
        The offending source line text, or ``None``.
    """

    def __init__(
        self,
        message: str,
        line_no: int | None = None,
        column: int | None = None,
        line: str | None = None,
    ) -> None:
        position = ""
        if line_no is not None:
            position = f"line {line_no}"
            if column is not None:
                position += f", column {column}"
            position = f" ({position})"
        full = f"{message}{position}"
        if line is not None:
            full += f"\n  {line.rstrip()}"
            if column is not None:
                full += "\n  " + " " * (column - 1) + "^"
        super().__init__(full)
        self.line_no = line_no
        self.column = column
        self.line = line


# ---------------------------------------------------------------------------
# Numbers with SPICE scale suffixes
# ---------------------------------------------------------------------------

_NUMBER_RE = re.compile(
    r"^([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)([a-zA-Z]*)$"
)

#: SPICE scale factors, longest match first (``meg`` and ``mil`` must
#: win over ``m``).  Letters after the matched factor are unit names
#: and are ignored (``5pF``, ``10kOhm``).
_SCALE_FACTORS = (
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
)

_KNOWN_UNIT_TAILS = frozenset(
    {"", "s", "f", "h", "hz", "v", "a", "ohm", "ohms", "farad", "henry"}
)


def parse_spice_number(token: str) -> float:
    """Parse a SPICE-style number: ``2.2k``, ``100meg``, ``1e-12``, ``5pF``.

    The optional letter tail is interpreted as a scale factor
    (``t g meg k m u n p f``, plus ``mil`` = 25.4e-6) followed by an
    ignored unit name; an unrecognized tail raises
    :class:`~repro.errors.NetlistError` (a bad unit suffix is a syntax
    error, not silently 1.0).
    """
    match = _NUMBER_RE.match(token.strip())
    if not match:
        raise NetlistError(f"not a number: {token!r}")
    mantissa = float(match.group(1))
    tail = match.group(2).lower()
    if not tail:
        return mantissa
    for suffix, scale in _SCALE_FACTORS:
        if tail.startswith(suffix):
            rest = tail[len(suffix):]
            if rest in _KNOWN_UNIT_TAILS:
                return mantissa * scale
            raise NetlistError(
                f"unknown unit suffix {match.group(2)!r} in {token!r}"
            )
    if tail in _KNOWN_UNIT_TAILS:
        # A bare unit name with no scale factor: '50ohm', '3V'.
        return mantissa
    raise NetlistError(f"unknown unit suffix {match.group(2)!r} in {token!r}")


# ---------------------------------------------------------------------------
# {...} value expressions -> float | Param | ParamAffine
# ---------------------------------------------------------------------------

_EXPR_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?[a-zA-Z]*)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>[-+*/()])"
    r")"
)


@dataclass
class _Affine:
    """Intermediate affine value: ``const + sum(coeff * name)``."""

    const: float = 0.0
    terms: dict = field(default_factory=dict)

    @property
    def is_const(self) -> bool:
        return not self.terms

    def scaled(self, k: float) -> "_Affine":
        return _Affine(
            self.const * k, {n: c * k for n, c in self.terms.items()}
        )

    def plus(self, other: "_Affine") -> "_Affine":
        terms = dict(self.terms)
        for name, coeff in other.terms.items():
            terms[name] = terms.get(name, 0.0) + coeff
        return _Affine(self.const + other.const, terms)


class _ExprParser:
    """Recursive-descent parser for the affine ``{...}`` expressions."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: list[str] = []
        pos = 0
        while pos < len(text):
            match = _EXPR_TOKEN_RE.match(text, pos)
            if not match or match.end() == pos:
                raise NetlistError(
                    f"bad character in expression {{{text}}} at "
                    f"offset {pos}: {text[pos:]!r}"
                )
            self.tokens.append(match.group().strip())
            pos = match.end()
        self.index = 0

    def peek(self) -> str | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise NetlistError(
                f"unexpected end of expression {{{self.text}}}"
            )
        self.index += 1
        return token

    def parse(self) -> _Affine:
        value = self.expr()
        if self.peek() is not None:
            raise NetlistError(
                f"trailing {self.peek()!r} in expression {{{self.text}}}"
            )
        return value

    def expr(self) -> _Affine:
        value = self.term()
        while self.peek() in ("+", "-"):
            op = self.take()
            rhs = self.term()
            value = value.plus(rhs if op == "+" else rhs.scaled(-1.0))
        return value

    def term(self) -> _Affine:
        value = self.factor()
        while self.peek() in ("*", "/"):
            op = self.take()
            rhs = self.factor()
            if op == "*":
                if not value.is_const and not rhs.is_const:
                    raise NetlistError(
                        f"expression {{{self.text}}} multiplies two "
                        "parameters; only affine combinations "
                        "(const * param + ...) map onto Param slots"
                    )
                value = (
                    rhs.scaled(value.const)
                    if value.is_const
                    else value.scaled(rhs.const)
                )
            else:
                if not rhs.is_const:
                    raise NetlistError(
                        f"expression {{{self.text}}} divides by a "
                        "parameter; only division by constants is affine"
                    )
                if rhs.const == 0.0:
                    raise NetlistError(
                        f"expression {{{self.text}}} divides by zero"
                    )
                value = value.scaled(1.0 / rhs.const)
        return value

    def factor(self) -> _Affine:
        token = self.take()
        if token == "-":
            return self.factor().scaled(-1.0)
        if token == "+":
            return self.factor()
        if token == "(":
            value = self.expr()
            closing = self.take()
            if closing != ")":
                raise NetlistError(
                    f"expected ')' in expression {{{self.text}}}, "
                    f"got {closing!r}"
                )
            return value
        if token in ")*/":
            raise NetlistError(
                f"unexpected {token!r} in expression {{{self.text}}}"
            )
        if token[0].isdigit() or token[0] == ".":
            return _Affine(const=parse_spice_number(token))
        return _Affine(terms={token: 1.0})


def _parse_value_expression(text: str):
    """``{...}`` body -> float, :class:`Param` or :class:`ParamAffine`."""
    affine = _ExprParser(text).parse()
    terms = {n: c for n, c in affine.terms.items() if c != 0.0}
    if not terms:
        return affine.const
    if len(terms) == 1 and affine.const == 0.0:
        (name, coeff), = terms.items()
        return Param(name, coeff)
    return ParamAffine(tuple(terms.items()), affine.const)


# ---------------------------------------------------------------------------
# Union-find over node names
# ---------------------------------------------------------------------------


class UnionFind:
    """Disjoint-set forest over hashable items (path-halving + rank).

    Used by the parser to collapse wire-connected node classes before
    stamping; exposed publicly so tests (and other frontends) can
    verify collapse equivalence directly.
    """

    def __init__(self) -> None:
        self._parent: dict = {}
        self._rank: dict = {}

    def add(self, item) -> None:
        """Register ``item`` as its own class (no-op if known)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def __contains__(self, item) -> bool:
        return item in self._parent

    def find(self, item):
        """Representative of ``item``'s class (registers new items)."""
        self.add(item)
        parent = self._parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a, b) -> None:
        """Merge the classes of ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def groups(self) -> list[list]:
        """The classes, each as a list in registration order."""
        out: dict = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return list(out.values())


# ---------------------------------------------------------------------------
# Statement scanning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Statement:
    """One logical statement: joined continuations plus its position."""

    text: str
    line_no: int
    line: str


def _strip_comment(line: str) -> str:
    """Remove ``;`` / ``$`` trailing comments (outside any brackets)."""
    depth = 0
    for i, ch in enumerate(line):
        if ch in "({":
            depth += 1
        elif ch in ")}":
            depth -= 1
        elif ch in ";$" and depth == 0:
            return line[:i]
    return line


def _scan_statements(source: str) -> list[_Statement]:
    """Split source text into logical statements (continuations joined)."""
    statements: list[_Statement] = []
    for line_no, raw in enumerate(source.splitlines(), start=1):
        stripped = _strip_comment(raw).strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not statements:
                raise NetlistSyntaxError(
                    "continuation line with nothing to continue",
                    line_no,
                    1,
                    raw,
                )
            prev = statements[-1]
            statements[-1] = _Statement(
                prev.text + " " + stripped[1:].strip(), prev.line_no, prev.line
            )
            continue
        statements.append(_Statement(stripped, line_no, raw))
    return statements


def _split_fields(statement: _Statement) -> list[tuple[str, int]]:
    """Whitespace-split keeping ``(...)``/``{...}`` groups intact.

    Returns ``(token, column)`` pairs; the column is 1-based within the
    statement's first physical line (best-effort for continuations).
    """
    text = statement.text
    fields: list[tuple[str, int]] = []
    i = 0
    n = len(text)
    while i < n:
        if text[i].isspace():
            i += 1
            continue
        start = i
        depth = 0
        while i < n and (depth > 0 or not text[i].isspace()):
            if text[i] in "({":
                depth += 1
            elif text[i] in ")}":
                depth -= 1
                if depth < 0:
                    raise NetlistSyntaxError(
                        f"unbalanced {text[i]!r}",
                        statement.line_no,
                        _column_of(statement, start),
                        statement.line,
                    )
            i += 1
        if depth != 0:
            raise NetlistSyntaxError(
                "unclosed '(' or '{' in statement",
                statement.line_no,
                _column_of(statement, start),
                statement.line,
            )
        fields.append((text[start:i], _column_of(statement, start)))
    return fields


def _column_of(statement: _Statement, offset: int) -> int | None:
    """Map a joined-statement offset back to a column of the first line.

    Statements are stripped of leading whitespace before joining, so the
    column is the offset shifted by the raw line's indent.  Offsets that
    fall past the first physical line (continuation tokens) have no
    meaningful column and map to ``None``.
    """
    indent = len(statement.line) - len(statement.line.lstrip())
    column = indent + offset + 1
    if column <= len(statement.line.rstrip()):
        return column
    return None


# ---------------------------------------------------------------------------
# Element-line parsing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _PendingElement:
    """An element statement awaiting node collapse: kind + raw fields."""

    kind: str
    name: str
    fields: tuple
    statement: _Statement


_WAVEFORM_FORMS = ("DC", "STEP", "PULSE", "SIN", "PWL")


def _numbers_in_group(body: str) -> list[float]:
    """Numbers inside a ``NAME(...)`` group (commas act as spaces)."""
    tokens = [t for t in body.replace(",", " ").split() if t]
    return [parse_spice_number(t) for t in tokens]


def _parse_waveform(tokens: list[str]) -> SourceWaveform:
    """Parse the waveform tail of a V/I line."""
    if not tokens:
        raise NetlistError("source needs a value or waveform")
    head = tokens[0]
    upper = head.upper()
    if upper == "DC":
        if len(tokens) != 2:
            raise NetlistError("DC takes exactly one value")
        return Dc(parse_spice_number(tokens[1]))
    match = re.match(r"^([A-Za-z]+)\s*\((.*)\)$", " ".join(tokens), re.DOTALL)
    if match:
        form = match.group(1).upper()
        values = _numbers_in_group(match.group(2))
        if form == "STEP":
            if not 1 <= len(values) <= 4:
                raise NetlistError(
                    "STEP takes 1-4 values: v1 | v0 v1 [t_delay [t_rise]]"
                )
            if len(values) == 1:
                return Step(0.0, values[0])
            return Step(*values)
        if form == "PULSE":
            if len(values) != 7:
                raise NetlistError(
                    "PULSE takes 7 values: v0 v1 t_delay t_rise t_fall "
                    "width period"
                )
            return Pulse(*values)
        if form == "SIN":
            if not 3 <= len(values) <= 4:
                raise NetlistError(
                    "SIN takes 3-4 values: offset amplitude frequency "
                    "[t_delay]"
                )
            return Sine(*values)
        if form == "PWL":
            if len(values) < 4 or len(values) % 2:
                raise NetlistError(
                    "PWL takes an even number (>= 4) of values: t1 v1 t2 v2 ..."
                )
            pairs = tuple(zip(values[0::2], values[1::2]))
            return PiecewiseLinear(pairs)
        raise NetlistError(
            f"unknown waveform {form!r}; known: {', '.join(_WAVEFORM_FORMS)}"
        )
    if len(tokens) == 1:
        return Dc(parse_spice_number(head))
    raise NetlistError(
        f"cannot parse source specification {' '.join(tokens)!r}"
    )


def _parse_element_value(token: str):
    """An element value field: number-with-suffix or ``{expr}``."""
    if token.startswith("{") and token.endswith("}"):
        return _parse_value_expression(token[1:-1])
    return parse_spice_number(token)


def _split_ic(tokens: list[str], what: str) -> tuple[list[str], float]:
    """Pull an optional trailing ``ic=value`` field off ``tokens``."""
    ic = 0.0
    rest = []
    for token in tokens:
        if token.lower().startswith("ic="):
            ic = parse_spice_number(token[3:])
        else:
            rest.append(token)
    if len(rest) + 1 < len(tokens):
        raise NetlistError(f"{what} has more than one ic= field")
    return rest, ic


class _Parser:
    """Stateful single-pass parser feeding the collapse/build phase."""

    def __init__(self, source: str, title: str | None) -> None:
        self.source = source
        self.title = title
        self.defaults: dict[str, float] = {}
        self.pending: list[_PendingElement] = []
        self.wires: list[tuple[str, str, _Statement]] = []
        self.names: dict[str, _Statement] = {}
        self.nodes = UnionFind()
        self.node_order: list[str] = []

    # -- helpers ------------------------------------------------------------

    def error(
        self, message: str, statement: _Statement, column: int | None = None
    ) -> NetlistSyntaxError:
        return NetlistSyntaxError(
            message, statement.line_no, column, statement.line
        )

    def node(self, token: str, statement: _Statement, column: int) -> str:
        """Canonicalize a node token and track first-seen order."""
        if token.startswith("{"):
            raise self.error(
                f"expected a node name, got expression {token!r}",
                statement,
                column,
            )
        try:
            name = canonical_node(token)
        except NetlistError as exc:
            raise self.error(str(exc), statement, column) from None
        if name not in self.nodes:
            self.node_order.append(name)
        self.nodes.add(name)
        return name

    def claim_name(self, name: str, statement: _Statement) -> None:
        previous = self.names.get(name)
        if previous is not None:
            raise self.error(
                f"duplicate element name {name!r} (first defined on "
                f"line {previous.line_no})",
                statement,
            )
        self.names[name] = statement

    # -- statement dispatch -------------------------------------------------

    def feed(self, statement: _Statement) -> bool:
        """Process one statement; returns False at ``.end``."""
        if statement.text.startswith("."):
            return self.directive(statement)
        fields = _split_fields(statement)
        name, column = fields[0]
        kind = name[0].upper()
        if kind not in "RCLVIKEGHFW":
            raise self.error(
                f"unknown element type {name[0]!r} in {name!r} (known: "
                "R C L V I K E G H F W)",
                statement,
                column,
            )
        self.claim_name(name, statement)
        handler = getattr(self, f"element_{kind}")
        handler(name, fields, statement)
        return True

    def directive(self, statement: _Statement) -> bool:
        fields = _split_fields(statement)
        word = fields[0][0].lower()
        if word == ".end":
            return False
        if word == ".title":
            text = statement.text[len(".title"):].strip()
            if self.title is None:
                self.title = text
            return True
        if word == ".param":
            if len(fields) < 2:
                raise self.error(
                    ".param needs NAME=VALUE assignments", statement
                )
            for token, column in fields[1:]:
                name, sep, value = token.partition("=")
                if not sep or not name or not value:
                    raise self.error(
                        f"bad .param assignment {token!r}; expected "
                        "NAME=VALUE",
                        statement,
                        column,
                    )
                try:
                    self.defaults[name] = parse_spice_number(value)
                except NetlistError as exc:
                    raise self.error(str(exc), statement, column) from None
            return True
        raise self.error(
            f"unsupported directive {fields[0][0]!r} (known: .param, "
            ".title, .end)",
            statement,
            fields[0][1],
        )

    def two_nodes(
        self, fields: list, statement: _Statement, what: str, n_extra: int
    ) -> tuple[str, str, list]:
        """Common ``name n1 n2 ...`` prefix with arity checking."""
        if len(fields) < 3 + n_extra:
            raise self.error(
                f"{what} needs at least {2 + n_extra} fields after the "
                f"name, got {len(fields) - 1}",
                statement,
            )
        n1 = self.node(fields[1][0], statement, fields[1][1])
        n2 = self.node(fields[2][0], statement, fields[2][1])
        return n1, n2, fields[3:]

    # -- element kinds ------------------------------------------------------

    def element_W(self, name, fields, statement) -> None:
        n1, n2, rest = self.two_nodes(fields, statement, "wire", 0)
        if rest:
            raise self.error(
                f"wire {name!r} takes exactly two nodes", statement, rest[0][1]
            )
        self.wires.append((n1, n2, statement))

    def _value_element(self, kind, name, fields, statement, ic_label):
        n1, n2, rest = self.two_nodes(fields, statement, kind, 1)
        tokens = [t for t, _ in rest]
        try:
            tokens, ic = _split_ic(tokens, name)
            if len(tokens) != 1:
                raise NetlistError(
                    f"{name!r} takes one value field, got {tokens!r}"
                )
            value = _parse_element_value(tokens[0])
        except NetlistError as exc:
            raise self.error(str(exc), statement, rest[0][1]) from None
        if ic and ic_label is None:
            raise self.error(
                f"{name!r} does not take an ic= field", statement
            )
        self.pending.append(
            _PendingElement(kind, name, (n1, n2, value, ic), statement)
        )

    def element_R(self, name, fields, statement) -> None:
        self._value_element("R", name, fields, statement, None)
        # Intercept exact zero-ohm resistors: they are wires.
        pending = self.pending[-1]
        if pending.fields[2] == 0.0:
            self.pending.pop()
            self.wires.append(
                (pending.fields[0], pending.fields[1], statement)
            )

    def element_C(self, name, fields, statement) -> None:
        self._value_element("C", name, fields, statement, "initial_voltage")

    def element_L(self, name, fields, statement) -> None:
        self._value_element("L", name, fields, statement, "initial_current")

    def _source_element(self, kind, name, fields, statement) -> None:
        n1, n2, rest = self.two_nodes(fields, statement, "source", 1)
        try:
            waveform = _parse_waveform([t for t, _ in rest])
        except NetlistError as exc:
            raise self.error(
                str(exc), statement, rest[0][1] if rest else None
            ) from None
        self.pending.append(
            _PendingElement(kind, name, (n1, n2, waveform), statement)
        )

    def element_V(self, name, fields, statement) -> None:
        self._source_element("V", name, fields, statement)

    def element_I(self, name, fields, statement) -> None:
        self._source_element("I", name, fields, statement)

    def element_K(self, name, fields, statement) -> None:
        if len(fields) != 4:
            raise self.error(
                f"mutual inductance {name!r} takes: K L1 L2 coupling",
                statement,
            )
        l1, l2 = fields[1][0], fields[2][0]
        try:
            coupling = parse_spice_number(fields[3][0])
        except NetlistError as exc:
            raise self.error(str(exc), statement, fields[3][1]) from None
        self.pending.append(
            _PendingElement("K", name, (l1, l2, coupling), statement)
        )

    def _controlled_v(self, kind, name, fields, statement) -> None:
        """E (VCVS) / G (VCCS): name n+ n- cp cn gain."""
        if len(fields) != 6:
            raise self.error(
                f"{name!r} takes: {kind} n+ n- ctrl+ ctrl- gain", statement
            )
        n1 = self.node(fields[1][0], statement, fields[1][1])
        n2 = self.node(fields[2][0], statement, fields[2][1])
        cp = self.node(fields[3][0], statement, fields[3][1])
        cn = self.node(fields[4][0], statement, fields[4][1])
        try:
            gain = parse_spice_number(fields[5][0])
        except NetlistError as exc:
            raise self.error(str(exc), statement, fields[5][1]) from None
        self.pending.append(
            _PendingElement(kind, name, (n1, n2, cp, cn, gain), statement)
        )

    def element_E(self, name, fields, statement) -> None:
        self._controlled_v("E", name, fields, statement)

    def element_G(self, name, fields, statement) -> None:
        self._controlled_v("G", name, fields, statement)

    def _controlled_i(self, kind, name, fields, statement) -> None:
        """H (CCVS) / F (CCCS): name n+ n- vname gain."""
        if len(fields) != 5:
            raise self.error(
                f"{name!r} takes: {kind} n+ n- ctrl_source gain", statement
            )
        n1 = self.node(fields[1][0], statement, fields[1][1])
        n2 = self.node(fields[2][0], statement, fields[2][1])
        ctrl = fields[3][0]
        try:
            gain = parse_spice_number(fields[4][0])
        except NetlistError as exc:
            raise self.error(str(exc), statement, fields[4][1]) from None
        self.pending.append(
            _PendingElement(kind, name, (n1, n2, ctrl, gain), statement)
        )

    def element_H(self, name, fields, statement) -> None:
        self._controlled_i("H", name, fields, statement)

    def element_F(self, name, fields, statement) -> None:
        self._controlled_i("F", name, fields, statement)

    # -- collapse + build ---------------------------------------------------

    def collapse_map(self) -> dict[str, str]:
        """Node -> representative map from the wire union-find pass.

        Ground always represents its class; otherwise the first node of
        the class in file order wins, so collapsed netlists keep stable,
        human-predictable names.
        """
        for n1, n2, _ in self.wires:
            self.nodes.union(n1, n2)
        representative: dict[str, str] = {}
        for node in self.node_order:
            root = self.nodes.find(node)
            if node == "0":
                representative[root] = "0"
            else:
                representative.setdefault(root, node)
        return {
            node: representative[self.nodes.find(node)]
            for node in self.node_order
        }

    def build(self) -> Circuit:
        """Instantiate the collapsed circuit from the pending elements."""
        mapping = self.collapse_map()
        circuit = Circuit(self.title or "")

        def mapped(pending: _PendingElement, *nodes: str) -> list[str]:
            out = [mapping[n] for n in nodes]
            if len(out) >= 2 and out[0] == out[1]:
                raise self.error(
                    f"element {pending.name!r} is short-circuited: wires "
                    f"merge {nodes[0]!r} and {nodes[1]!r} into one node",
                    pending.statement,
                )
            return out

        for pending in self.pending:
            f = pending.fields
            try:
                if pending.kind == "R":
                    n1, n2 = mapped(pending, f[0], f[1])
                    circuit.add_resistor(pending.name, n1, n2, f[2])
                elif pending.kind == "C":
                    n1, n2 = mapped(pending, f[0], f[1])
                    circuit.add_capacitor(
                        pending.name, n1, n2, f[2], initial_voltage=f[3]
                    )
                elif pending.kind == "L":
                    n1, n2 = mapped(pending, f[0], f[1])
                    circuit.add_inductor(
                        pending.name, n1, n2, f[2], initial_current=f[3]
                    )
                elif pending.kind == "V":
                    n1, n2 = mapped(pending, f[0], f[1])
                    circuit.add_voltage_source(pending.name, n1, n2, f[2])
                elif pending.kind == "I":
                    n1, n2 = mapped(pending, f[0], f[1])
                    circuit.add_current_source(pending.name, n1, n2, f[2])
                elif pending.kind == "K":
                    for ref in (f[0], f[1]):
                        if ref not in self.names:
                            raise NetlistError(
                                f"mutual {pending.name!r} references "
                                f"unknown inductor {ref!r}"
                            )
                    circuit.add_mutual_inductance(
                        pending.name, f[0], f[1], f[2]
                    )
                elif pending.kind == "E":
                    n1, n2 = mapped(pending, f[0], f[1])
                    circuit.add_vcvs(
                        pending.name, n1, n2, mapping[f[2]], mapping[f[3]], f[4]
                    )
                elif pending.kind == "G":
                    n1, n2 = mapped(pending, f[0], f[1])
                    circuit.add_vccs(
                        pending.name, n1, n2, mapping[f[2]], mapping[f[3]], f[4]
                    )
                elif pending.kind == "H":
                    n1, n2 = mapped(pending, f[0], f[1])
                    circuit.add_ccvs(pending.name, n1, n2, f[2], f[3])
                else:  # F
                    n1, n2 = mapped(pending, f[0], f[1])
                    circuit.add_cccs(pending.name, n1, n2, f[2], f[3])
            except NetlistSyntaxError:
                raise
            except NetlistError as exc:
                raise self.error(str(exc), pending.statement) from None
        return circuit


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParsedNetlist:
    """The result of parsing a netlist: circuit + parameter defaults.

    Attributes
    ----------
    circuit:
        The collapsed :class:`~repro.spice.netlist.Circuit`; element
        values referenced through ``{...}`` expressions are
        :class:`~repro.spice.netlist.Param` /
        :class:`~repro.spice.netlist.ParamAffine` slots.
    defaults:
        ``.param`` name -> value assignments (may cover only a subset
        of the slots actually used).
    title:
        The ``.title`` text (or the caller-supplied title), possibly
        empty.
    path:
        Source file path when parsed via :func:`parse_netlist_file`.
    """

    circuit: Circuit
    defaults: dict
    title: str
    path: str | None = None

    @property
    def is_parametric(self) -> bool:
        """True when the netlist uses any ``{...}`` parameter slots."""
        return bool(self.circuit.parameter_names())

    def template(self, defaults: Mapping[str, float] | None = None):
        """The circuit as a :class:`~repro.spice.mna.CircuitTemplate`.

        ``.param`` values become template defaults (overridable through
        ``defaults``).  Raises :class:`~repro.errors.NetlistError` for
        a fully concrete netlist -- use :attr:`circuit` directly.
        """
        from repro.spice.mna import CircuitTemplate

        merged = dict(self.defaults)
        merged.update(dict(defaults or {}))
        names = set(self.circuit.parameter_names())
        return CircuitTemplate(
            self.circuit,
            {k: v for k, v in merged.items() if k in names},
        )

    def bind(self, params: Mapping[str, float] | None = None) -> Circuit:
        """A concrete circuit: defaults overlaid with ``params``.

        For a netlist with no parameter slots this returns
        :attr:`circuit` itself (``params`` must then be empty).
        """
        if not self.is_parametric:
            if params:
                raise NetlistError(
                    f"netlist has no parameter slots; got {sorted(params)}"
                )
            return self.circuit
        return self.template().bind(params)


def parse_netlist(
    source: str, *, title: str | None = None
) -> ParsedNetlist:
    """Parse SPICE-like netlist text into a :class:`ParsedNetlist`.

    Comments (``*`` lines, ``;``/``$`` tails) and ``+`` continuations
    are handled; ``.param``/``.title``/``.end`` are the supported
    directives; wires (``W`` elements and zero-ohm resistors) are
    collapsed with a union-find pass before the circuit is built; the
    result is validated (ground reference, connectivity, dangling
    controlled-source references).

    Raises
    ------
    NetlistSyntaxError
        For malformed statements, with 1-based line/column position.
    NetlistError
        For whole-circuit failures (no ground, unreachable nodes).
    """
    parser = _Parser(source, title)
    for statement in _scan_statements(source):
        if not parser.feed(statement):
            break
    circuit = parser.build()
    circuit.validate()
    unknown = set(parser.defaults) - set(circuit.parameter_names())
    if unknown:
        raise NetlistError(
            f".param defines {sorted(unknown)} but no element value "
            "references them"
        )
    from repro import obs

    obs.inc("spice.parser.netlists")
    return ParsedNetlist(
        circuit=circuit,
        defaults=dict(parser.defaults),
        title=parser.title or "",
    )


def parse_netlist_file(path) -> ParsedNetlist:
    """Parse a netlist file (UTF-8); see :func:`parse_netlist`."""
    import pathlib

    path = pathlib.Path(path)
    parsed = parse_netlist(path.read_text(), title=None)
    return ParsedNetlist(
        circuit=parsed.circuit,
        defaults=parsed.defaults,
        title=parsed.title or path.stem,
        path=str(path),
    )


def parse_statement(circuit: Circuit, text: str):
    """Parse element statement(s) and add them to ``circuit``.

    The engine behind ``Circuit.add("R1 in mid 50")``: accepts element
    lines of the netlist grammar (R/C/L/V/I/K/E/G/H/F), including
    comments and ``+`` continuations.  Wires and directives are
    rejected -- retroactive node merging on a live circuit would
    silently rename nodes other elements already reference; use
    :func:`parse_netlist` for wire collapsing.

    Returns the added element (or
    :class:`~repro.spice.netlist.MutualInductance` for ``K`` lines);
    a multi-line ``text`` adds every statement and returns the list.
    """
    statements = _scan_statements(text)
    if not statements:
        raise NetlistError(f"no element statements in {text!r}")
    added = [_add_statement(circuit, s) for s in statements]
    return added[0] if len(added) == 1 else added


def _add_statement(circuit: Circuit, statement: _Statement):
    """Parse one scanned statement and add its element to ``circuit``."""
    if statement.text.startswith("."):
        raise NetlistSyntaxError(
            "directives are not allowed in Circuit.add(); only element "
            "lines",
            statement.line_no,
            1,
            statement.line,
        )
    if statement.text[0].upper() == "W":
        raise NetlistSyntaxError(
            "wire statements are only supported in full netlists "
            "(parse_netlist), where nodes can be collapsed before "
            "stamping",
            statement.line_no,
            1,
            statement.line,
        )
    parser = _Parser(statement.text, None)
    for name in (e.name for e in circuit.elements):
        parser.names[name] = statement
    for mutual in circuit.mutual_inductances:
        parser.names[mutual.name] = statement
    # Existing inductors must be visible to K-line reference checks.
    parser.feed(statement)
    if parser.wires:
        # A zero-ohm resistor lands here too: it is a wire in disguise.
        raise NetlistSyntaxError(
            "wire statements are only supported in full netlists "
            "(parse_netlist), where nodes can be collapsed before "
            "stamping",
            statement.line_no,
            1,
            statement.line,
        )
    pending = parser.pending[-1]
    before = len(circuit)
    built = parser.build()
    del built  # the scratch circuit only validated construction
    f = pending.fields
    if pending.kind == "K":
        return circuit.add_mutual_inductance(pending.name, f[0], f[1], f[2])
    adders = {
        "R": lambda: circuit.add_resistor(pending.name, f[0], f[1], f[2]),
        "C": lambda: circuit.add_capacitor(
            pending.name, f[0], f[1], f[2], initial_voltage=f[3]
        ),
        "L": lambda: circuit.add_inductor(
            pending.name, f[0], f[1], f[2], initial_current=f[3]
        ),
        "V": lambda: circuit.add_voltage_source(pending.name, f[0], f[1], f[2]),
        "I": lambda: circuit.add_current_source(pending.name, f[0], f[1], f[2]),
        "E": lambda: circuit.add_vcvs(
            pending.name, f[0], f[1], f[2], f[3], f[4]
        ),
        "G": lambda: circuit.add_vccs(
            pending.name, f[0], f[1], f[2], f[3], f[4]
        ),
        "H": lambda: circuit.add_ccvs(pending.name, f[0], f[1], f[2], f[3]),
        "F": lambda: circuit.add_cccs(pending.name, f[0], f[1], f[2], f[3]),
    }
    element = adders[pending.kind]()
    assert len(circuit) == before + 1
    return element


# ---------------------------------------------------------------------------
# Simulation-window heuristic + corpus runner
# ---------------------------------------------------------------------------


def suggest_transient_window(
    circuit: Circuit, n_samples: int = 2000
) -> tuple[float, float]:
    """Heuristic ``(t_stop, dt)`` for a concrete circuit's step response.

    Sums the total series resistance, inductance and shunt capacitance
    and covers several RC time constants plus several LC periods::

        t_stop = 8 * (R_tot * C_tot) + 6 * 2*pi*sqrt(L_tot * C_tot)

    with a 1 ns floor so degenerate (resistor-only) netlists still get
    a usable grid.  ``dt = t_stop / n_samples``.  This is a *default*
    for CLI/corpus runs, not a convergence guarantee -- pass explicit
    values for accuracy-critical measurements.
    """
    import math

    from repro.spice.netlist import Capacitor, Inductor, Resistor

    r_tot = c_tot = l_tot = 0.0
    for element in circuit.elements:
        value = getattr(element, "value", None)
        if value is None or is_parametric(value):
            continue
        if isinstance(element, Resistor):
            r_tot += float(value)
        elif isinstance(element, Capacitor):
            c_tot += float(value)
        elif isinstance(element, Inductor):
            l_tot += float(value)
    t_stop = 8.0 * r_tot * c_tot + 6.0 * 2.0 * math.pi * math.sqrt(
        l_tot * c_tot
    )
    t_stop = max(t_stop, 1e-9)
    return t_stop, t_stop / n_samples


def run_corpus(
    paths,
    t_stop: float | None = None,
    dt: float | None = None,
    backend: str = "auto",
) -> dict:
    """Parse and simulate a corpus of ``.cir`` files; return a summary.

    ``paths`` may mix files and directories (directories contribute
    their ``*.cir`` files, sorted).  Each netlist is parsed, bound with
    its ``.param`` defaults, validated, and -- when it contains at
    least one source -- run through a short transient; the last
    non-ground node's 50% delay is measured when the waveform crosses.
    Per-file failures are captured as strings, not raised, so one bad
    fixture cannot hide the rest of the corpus.
    """
    import pathlib
    import time

    from repro.errors import ReproError
    from repro.spice.netlist import VoltageSource
    from repro.spice.transient import simulate_transient

    files: list[pathlib.Path] = []
    for entry in paths:
        p = pathlib.Path(entry)
        if p.is_dir():
            files.extend(sorted(p.glob("*.cir")))
        else:
            files.append(p)

    records = []
    for path in files:
        record: dict = {"file": str(path)}
        started = time.perf_counter()
        try:
            parsed = parse_netlist_file(path)
            circuit = parsed.bind()
            record.update(
                title=parsed.title,
                n_elements=len(circuit),
                n_nodes=len(circuit.node_names()),
                params=dict(parsed.defaults),
            )
            has_source = any(
                isinstance(e, VoltageSource) for e in circuit.elements
            )
            if has_source:
                stop, step = suggest_transient_window(circuit)
                result = simulate_transient(
                    circuit,
                    t_stop if t_stop is not None else stop,
                    dt if dt is not None else step,
                    backend=backend,
                )
                node = circuit.node_names()[-1]
                wave = result.voltage(node)
                record["output_node"] = node
                record["v_final"] = wave.final_value
                try:
                    record["delay_50_s"] = wave.delay_50()
                except ReproError:
                    record["delay_50_s"] = None
            record["ok"] = True
        except ReproError as exc:
            record["ok"] = False
            record["error"] = str(exc)
        record["seconds"] = round(time.perf_counter() - started, 6)
        records.append(record)

    return {
        "schema": 1,
        "generated_by": "repro.spice.parser",
        "n_files": len(records),
        "n_ok": sum(1 for r in records if r["ok"]),
        "files": records,
    }


def main(argv: list[str] | None = None) -> int:
    """Corpus smoke runner CLI: parse -> simulate -> JSON summary."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.spice.parser",
        description="Parse and simulate a corpus of .cir netlists and "
        "write a JSON summary.",
    )
    parser.add_argument(
        "paths", nargs="+", help=".cir files or directories of them"
    )
    parser.add_argument(
        "--summary", metavar="PATH", help="write the JSON summary here"
    )
    parser.add_argument("--t-stop", type=float, help="transient end time (s)")
    parser.add_argument("--dt", type=float, help="transient step (s)")
    parser.add_argument(
        "--backend", default="auto", help="linear-solver backend"
    )
    args = parser.parse_args(argv)

    summary = run_corpus(
        args.paths, t_stop=args.t_stop, dt=args.dt, backend=args.backend
    )
    for record in summary["files"]:
        status = "ok" if record["ok"] else f"FAIL: {record['error']}"
        delay = record.get("delay_50_s")
        extra = f"  delay50={delay:.3e}s" if delay else ""
        print(f"{record['file']}: {status}{extra}")
    print(f"{summary['n_ok']}/{summary['n_files']} netlists ok")
    if args.summary:
        with open(args.summary, "w") as handle:
            json.dump(summary, handle, indent=1, sort_keys=True)
        print(f"summary written to {args.summary}")
    return 0 if summary["n_ok"] == summary["n_files"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
