"""Coupled two-line (aggressor/victim) lumped models.

The natural companion workload to the paper: the same wide upper-metal
wires whose *self*-inductance breaks RC delay models also couple to
their neighbors capacitively (sidewall capacitance ``Ccm``) and
magnetically (mutual inductance, coefficient ``km``).  This module
builds a two-conductor version of the PI ladder of
:mod:`repro.spice.ladder`: two identical lines, segment-by-segment
coupling caps and mutual inductances, each line driven through its own
gate resistance.

Used by :mod:`repro.analysis.crosstalk` for noise and switching-delay
studies, and exercised end-to-end in ``examples/crosstalk.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParameterError, require_nonnegative, require_positive
from repro.spice.netlist import Circuit, Step

__all__ = ["VictimMode", "CoupledLadderSpec", "build_coupled_ladder_circuit"]


class VictimMode(str, enum.Enum):
    """What the second (victim) line's driver does during the event."""

    QUIET = "quiet"  # victim held low through its driver
    EVEN = "even"  # victim switches with the aggressor (same direction)
    ODD = "odd"  # victim switches against the aggressor


@dataclass(frozen=True)
class CoupledLadderSpec:
    """Two identical coupled lines plus their drivers and loads.

    Attributes
    ----------
    rt, lt, ct:
        Per-line totals (self parasitics), as in :class:`LadderSpec`.
    cct:
        Total line-to-line coupling capacitance (F).
    km:
        Inductive coupling coefficient between corresponding segments
        (0 <= km < 1; on-chip neighbors run ~0.4-0.7).
    rtr_aggressor, rtr_victim:
        Driver resistances of the two lines.
    cl:
        Load capacitance at each far end.
    n_segments:
        Lumped segments per line (PI arrangement for both the ground
        and the coupling capacitance).
    """

    rt: float
    lt: float
    ct: float
    cct: float
    km: float
    rtr_aggressor: float
    rtr_victim: float
    cl: float = 0.0
    n_segments: int = 32

    def __post_init__(self) -> None:
        require_nonnegative("rt", self.rt)
        require_positive("lt", self.lt)
        require_positive("ct", self.ct)
        require_nonnegative("cct", self.cct)
        require_nonnegative("km", self.km)
        if self.km >= 1.0:
            raise ParameterError(f"km must be < 1, got {self.km}")
        require_positive("rtr_aggressor", self.rtr_aggressor)
        require_positive("rtr_victim", self.rtr_victim)
        require_nonnegative("cl", self.cl)
        if not isinstance(self.n_segments, int) or self.n_segments < 1:
            raise ParameterError(
                f"n_segments must be a positive integer, got {self.n_segments!r}"
            )

    @property
    def aggressor_output(self) -> str:
        """Far-end node name of the aggressor line."""
        return f"a{self.n_segments}"

    @property
    def victim_output(self) -> str:
        """Far-end node name of the victim line."""
        return f"v{self.n_segments}"


def _pi_weights(n: int) -> list[float]:
    """Per-node PI capacitance weights: half segments at both ends."""
    weights = [1.0] * (n + 1)
    weights[0] = 0.5
    weights[n] = 0.5
    return weights


def build_coupled_ladder_circuit(
    spec: CoupledLadderSpec,
    mode: VictimMode | str = VictimMode.QUIET,
    v_step: float = 1.0,
) -> Circuit:
    """Materialize the coupled pair as a netlist.

    The aggressor driver always fires a rising step at ``t = 0``; the
    victim driver holds low (``quiet``), fires the same step (``even``)
    or a falling step from ``v_step`` (``odd``).
    """
    mode = VictimMode(mode)
    n = spec.n_segments
    ckt = Circuit(
        f"coupled pair n={n} (Cc={spec.cct:g}, km={spec.km:g}, {mode.value})"
    )

    ckt.add_voltage_source("vina", "ina", "0", Step(0.0, v_step))
    ckt.add_resistor("rtra", "ina", "a0", spec.rtr_aggressor)
    if mode is VictimMode.QUIET:
        victim_wave = Step(0.0, 0.0)
    elif mode is VictimMode.EVEN:
        victim_wave = Step(0.0, v_step)
    else:
        victim_wave = Step(v_step, 0.0)
    ckt.add_voltage_source("vinv", "inv", "0", victim_wave)
    ckt.add_resistor("rtrv", "inv", "v0", spec.rtr_victim)

    r_seg = spec.rt / n
    l_seg = spec.lt / n
    c_seg = spec.ct / n
    cc_seg = spec.cct / n

    for prefix in ("a", "v"):
        for i in range(n):
            ckt.add_resistor(
                f"r{prefix}{i + 1}", f"{prefix}{i}", f"x{prefix}{i + 1}", r_seg
            )
            ckt.add_inductor(
                f"l{prefix}{i + 1}", f"x{prefix}{i + 1}", f"{prefix}{i + 1}", l_seg
            )

    weights = _pi_weights(n)
    for i, w in enumerate(weights):
        for prefix in ("a", "v"):
            ckt.add_capacitor(f"cg{prefix}{i}", f"{prefix}{i}", "0", w * c_seg)
        if spec.cct > 0:
            ckt.add_capacitor(f"cc{i}", f"a{i}", f"v{i}", w * cc_seg)
    if spec.cl > 0:
        ckt.add_capacitor("cla", spec.aggressor_output, "0", spec.cl)
        ckt.add_capacitor("clv", spec.victim_output, "0", spec.cl)

    if spec.km > 0:
        for i in range(1, n + 1):
            ckt.add_mutual_inductance(f"k{i}", f"la{i}", f"lv{i}", spec.km)
    return ckt
