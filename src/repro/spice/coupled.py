"""Coupled two-line (aggressor/victim) lumped models.

The natural companion workload to the paper: the same wide upper-metal
wires whose *self*-inductance breaks RC delay models also couple to
their neighbors capacitively (sidewall capacitance ``Ccm``) and
magnetically (mutual inductance, coefficient ``km``).

Since the introduction of :mod:`repro.bus` this module is a thin
two-line special case of the general N-line bus builder:
:func:`build_coupled_ladder_circuit` translates the historical
:class:`CoupledLadderSpec` / :class:`VictimMode` API into a
:class:`~repro.bus.spec.BusSpec` plus a two-entry switching pattern and
delegates to :func:`~repro.bus.builder.build_bus_circuit`, keeping the
legacy ``a``/``v`` node names (``tests/test_bus.py`` pins the two paths
to <= 1e-9 relative state agreement against a frozen reference
netlist).  For value-only sweeps over a pair with *equal* driver
resistances, :meth:`CoupledLadderSpec.as_bus_spec` feeds
:func:`~repro.bus.builder.build_bus_template` directly, putting
coupled-pair studies on the batched stamp-once / re-value-many path.

Used by :mod:`repro.analysis.crosstalk` for noise and switching-delay
studies, and exercised end-to-end in ``examples/crosstalk.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.bus.builder import build_bus_circuit
from repro.bus.spec import BusSpec, LineSwitch
from repro.errors import ParameterError, require_nonnegative, require_positive
from repro.spice.netlist import Circuit

__all__ = ["VictimMode", "CoupledLadderSpec", "build_coupled_ladder_circuit"]


class VictimMode(str, enum.Enum):
    """What the second (victim) line's driver does during the event."""

    QUIET = "quiet"  # victim held low through its driver
    EVEN = "even"  # victim switches with the aggressor (same direction)
    ODD = "odd"  # victim switches against the aggressor


@dataclass(frozen=True)
class CoupledLadderSpec:
    """Two identical coupled lines plus their drivers and loads.

    Attributes
    ----------
    rt, lt, ct:
        Per-line totals (self parasitics), as in :class:`LadderSpec`.
    cct:
        Total line-to-line coupling capacitance (F).
    km:
        Inductive coupling coefficient between corresponding segments
        (0 <= km < 1; on-chip neighbors run ~0.4-0.7).
    rtr_aggressor, rtr_victim:
        Driver resistances of the two lines.
    cl:
        Load capacitance at each far end.
    n_segments:
        Lumped segments per line (PI arrangement for both the ground
        and the coupling capacitance).
    """

    rt: float
    lt: float
    ct: float
    cct: float
    km: float
    rtr_aggressor: float
    rtr_victim: float
    cl: float = 0.0
    n_segments: int = 32

    def __post_init__(self) -> None:
        require_nonnegative("rt", self.rt)
        require_positive("lt", self.lt)
        require_positive("ct", self.ct)
        require_nonnegative("cct", self.cct)
        require_nonnegative("km", self.km)
        if self.km >= 1.0:
            raise ParameterError(f"km must be < 1, got {self.km}")
        require_positive("rtr_aggressor", self.rtr_aggressor)
        require_positive("rtr_victim", self.rtr_victim)
        require_nonnegative("cl", self.cl)
        if not isinstance(self.n_segments, int) or self.n_segments < 1:
            raise ParameterError(
                f"n_segments must be a positive integer, got {self.n_segments!r}"
            )

    @property
    def aggressor_output(self) -> str:
        """Far-end node name of the aggressor line."""
        return f"a{self.n_segments}"

    @property
    def victim_output(self) -> str:
        """Far-end node name of the victim line."""
        return f"v{self.n_segments}"

    def as_bus_spec(self) -> BusSpec:
        """This coupled pair as a two-line :class:`~repro.bus.spec.BusSpec`."""
        return BusSpec(
            n_lines=2,
            rt=self.rt,
            lt=self.lt,
            ct=self.ct,
            cct=self.cct,
            km=self.km,
            rtr=(self.rtr_aggressor, self.rtr_victim),
            cl=self.cl,
            n_segments=self.n_segments,
        )


#: Victim behaviour -> per-line bus switching pattern (aggressor rises).
_MODE_PATTERNS = {
    VictimMode.QUIET: (LineSwitch.RISE, LineSwitch.QUIET),
    VictimMode.EVEN: (LineSwitch.RISE, LineSwitch.RISE),
    VictimMode.ODD: (LineSwitch.RISE, LineSwitch.FALL),
}


def build_coupled_ladder_circuit(
    spec: CoupledLadderSpec,
    mode: VictimMode | str = VictimMode.QUIET,
    v_step: float = 1.0,
) -> Circuit:
    """Materialize the coupled pair as a netlist.

    The aggressor driver always fires a rising step at ``t = 0``; the
    victim driver holds low (``quiet``), fires the same step (``even``)
    or a falling step from ``v_step`` (``odd``).  The netlist itself is
    produced by the N-line bus builder with the legacy ``a``/``v`` node
    prefixes.
    """
    mode = VictimMode(mode)
    return build_bus_circuit(
        spec.as_bus_spec(),
        pattern=_MODE_PATTERNS[mode],
        v_step=v_step,
        prefixes=("a", "v"),
        title=(
            f"coupled pair n={spec.n_segments} "
            f"(Cc={spec.cct:g}, km={spec.km:g}, {mode.value})"
        ),
    )
