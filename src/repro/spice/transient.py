"""Transient simulation of linear circuits.

Solves the MNA system ``G x + C dx/dt = b(t)`` on a fixed time grid with
either of the two classic companion-model integrators:

``backward-euler``
    L-stable, first order.  Heavily damps numerical ringing; good for
    quick-and-dirty runs.

``trapezoidal``
    A-stable, second order, the SPICE default.  Preserves the oscillatory
    energy of underdamped RLC lines, which is exactly what the paper's
    experiments probe, so it is the default here too.

Both reduce each step to one linear solve with a *constant* matrix
(fixed step size), factorized exactly once through a pluggable
:class:`~repro.spice.backend.SimulationBackend` -- dense LU for small
systems, RCM-banded or sparse LU for the long ladder chains where a
dense solve would cost O(n^3)/O(n^2) per run.

Time grid
---------

The grid always ends *exactly* at ``t_stop``.  ``dt`` is an upper bound
on the step: the span is divided into ``ceil((t_stop - t_start) / dt)``
equal steps (``numpy.linspace`` style), so a non-divisible span shrinks
the effective step slightly rather than letting the final sample
overshoot past ``t_stop``.  (Historically the last point could land up
to ``dt`` *after* ``t_stop``, silently skewing measurements -- such as
the 50% delay -- that treat the last sample as the steady state.)  A
uniform, slightly smaller step was chosen over one final partial step
so a single matrix factorization still serves every step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError, SimulationError
from repro.spice.backend import SimulationBackend, resolve_backend
from repro.spice.mna import MnaSystem, build_mna
from repro.spice.netlist import GROUND, Circuit, canonical_node
from repro.tline.waveform import Waveform

__all__ = ["IntegrationMethod", "TransientResult", "simulate_transient"]


class IntegrationMethod(str, enum.Enum):
    """Time-integration schemes."""

    BACKWARD_EULER = "backward-euler"
    TRAPEZOIDAL = "trapezoidal"


@dataclass(frozen=True)
class TransientResult:
    """Simulated waveforms for every MNA unknown.

    Attributes
    ----------
    times:
        The simulation grid, shape ``(n_steps + 1,)``; ``times[-1]`` is
        exactly ``t_stop``.
    states:
        Solution matrix, shape ``(n_steps + 1, n_unknowns)``.
    system:
        The assembled MNA system (for index lookups).
    """

    times: np.ndarray
    states: np.ndarray
    system: MnaSystem

    def voltage(self, node) -> Waveform:
        """Waveform of a node voltage (ground is the zero waveform)."""
        if canonical_node(node) == GROUND:
            return Waveform(self.times, np.zeros_like(self.times))
        row = self.system.voltage_row(node)
        return Waveform(self.times, self.states[:, row].copy())

    def current(self, element_name: str) -> Waveform:
        """Waveform of a branch current (V sources and inductors)."""
        row = self.system.current_row(element_name)
        return Waveform(self.times, self.states[:, row].copy())

    @property
    def n_steps(self) -> int:
        """Number of time steps taken."""
        return self.times.size - 1


def _time_grid(t_start: float, t_stop: float, dt: float) -> np.ndarray:
    """Uniform grid from ``t_start`` to exactly ``t_stop``.

    ``dt`` caps the step; the count is ``ceil(span / dt)`` with a
    one-part-in-1e12 snap so a span that divides ``dt`` up to float
    round-off keeps its intended step count instead of gaining a
    near-degenerate extra step.
    """
    span = t_stop - t_start
    n_steps = max(1, int(np.ceil((span / dt) * (1.0 - 1e-12))))
    return np.linspace(t_start, t_stop, n_steps + 1)


def _initial_state(
    system: MnaSystem,
    initial: str | np.ndarray,
    t0: float,
    backend: SimulationBackend,
) -> np.ndarray:
    if isinstance(initial, np.ndarray):
        if initial.shape != (system.size,):
            raise ParameterError(
                f"initial state must have shape ({system.size},), got {initial.shape}"
            )
        return initial.astype(float).copy()
    if initial == "zero":
        return np.zeros(system.size)
    if initial == "dc":
        try:
            return backend.factorize(system.g_coo).solve(system.rhs(t0))
        except SimulationError as exc:
            raise SimulationError(
                "singular DC system while computing the initial operating "
                "point; pass initial='zero' or an explicit state vector"
            ) from exc
    raise ParameterError(f"initial must be 'zero', 'dc' or a vector, got {initial!r}")


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    method: IntegrationMethod | str = IntegrationMethod.TRAPEZOIDAL,
    initial: str | np.ndarray = "dc",
    t_start: float = 0.0,
    backend: SimulationBackend | str = "auto",
) -> TransientResult:
    """Run a fixed-step transient analysis.

    Parameters
    ----------
    circuit:
        Netlist to simulate.
    t_stop:
        End time (seconds).  The grid always includes ``t_stop`` as its
        exact last sample (see the module docstring).
    dt:
        Maximum step size; when ``(t_stop - t_start) / dt`` is not an
        integer the actual step shrinks so the grid stays uniform and
        lands exactly on ``t_stop``.  For RLC lines, resolve the
        fastest LC period: a few hundred steps per
        ``2*pi*sqrt(L_seg * C_seg)``.
    method:
        ``"trapezoidal"`` (default) or ``"backward-euler"``.
    initial:
        ``"dc"`` (operating point with sources at ``t_start``), ``"zero"``,
        or an explicit MNA state vector.
    backend:
        Linear-solver implementation: ``"auto"`` (default; picks dense,
        banded or sparse from the system's size and bandwidth), one of
        ``"dense"``/``"sparse"``/``"banded"``, or a
        :class:`~repro.spice.backend.SimulationBackend` instance.

    Returns
    -------
    TransientResult

    Notes
    -----
    For an ideal :class:`~repro.spice.netlist.Step` source delayed at
    ``t = 0`` with ``initial='dc'``, the operating point sees the *pre-step*
    value only if the step is strictly after ``t_start``; a step exactly at
    ``t_start`` is handled like SPICE handles it -- the initial solve uses
    the source value at ``t_start``, so place the step one ``dt`` later (or
    start from ``initial='zero'``) to capture the onset.
    """
    method = IntegrationMethod(method)
    if dt <= 0 or not np.isfinite(dt):
        raise ParameterError(f"dt must be positive and finite, got {dt}")
    if t_stop <= t_start:
        raise ParameterError("t_stop must exceed t_start")

    system = build_mna(circuit)
    times = _time_grid(t_start, t_stop, dt)
    n_steps = times.size - 1
    dt_eff = (t_stop - t_start) / n_steps

    if method is IntegrationMethod.BACKWARD_EULER:
        lhs = system.combine(1.0, 1.0 / dt_eff)
        history = system.c_coo.scaled(1.0 / dt_eff)
    else:
        lhs = system.combine(1.0, 2.0 / dt_eff)
        history = system.combine(-1.0, 2.0 / dt_eff)

    backend = resolve_backend(backend, lhs)
    # Factor the stepping matrix before the initial-state solve: the
    # banded backend memoizes its last RCM profile, and the DC solve's
    # different G-only pattern would otherwise evict the profile that
    # resolve_backend("auto") just seeded for the LHS.
    try:
        factorization = backend.factorize(lhs)
    except SimulationError as exc:
        raise SimulationError(
            f"singular transient system matrix (backend={backend.name})"
        ) from exc
    history_op = history.to_csr()

    x = np.empty((n_steps + 1, system.size))
    x[0] = _initial_state(system, initial, t_start, backend)
    b_all = system.rhs_matrix(times)

    if method is IntegrationMethod.BACKWARD_EULER:
        for k in range(n_steps):
            rhs = b_all[k + 1] + history_op @ x[k]
            x[k + 1] = factorization.solve(rhs)
    else:
        for k in range(n_steps):
            rhs = b_all[k + 1] + b_all[k] + history_op @ x[k]
            x[k + 1] = factorization.solve(rhs)

    if not np.all(np.isfinite(x)):
        raise SimulationError(
            "transient solution diverged (non-finite values); reduce dt"
        )
    return TransientResult(times=times, states=x, system=system)
