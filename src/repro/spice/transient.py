"""Transient simulation of linear circuits.

Solves the MNA system ``G x + C dx/dt = b(t)`` on a fixed time grid with
either of the two classic companion-model integrators:

``backward-euler``
    L-stable, first order.  Heavily damps numerical ringing; good for
    quick-and-dirty runs.

``trapezoidal``
    A-stable, second order, the SPICE default.  Preserves the oscillatory
    energy of underdamped RLC lines, which is exactly what the paper's
    experiments probe, so it is the default here too.

Both reduce each step to one linear solve with a *constant* matrix
(fixed step size), factorized exactly once through a pluggable
:class:`~repro.spice.backend.SimulationBackend` -- dense LU for small
systems, RCM-banded or sparse LU for the long ladder chains where a
dense solve would cost O(n^3)/O(n^2) per run.

Value-only parameter sweeps should use
:func:`simulate_transient_batch`: it takes a
:class:`~repro.spice.mna.CircuitTemplate`, assembles and analyzes the
structure once, and steps every parameter point in lockstep -- one
``(n, B)`` right-hand-side block per time step -- instead of running
``B`` independent simulations.

Time grid
---------

The grid always ends *exactly* at ``t_stop``.  ``dt`` is an upper bound
on the step: the span is divided into ``ceil((t_stop - t_start) / dt)``
equal steps (``numpy.linspace`` style), so a non-divisible span shrinks
the effective step slightly rather than letting the final sample
overshoot past ``t_stop``.  (Historically the last point could land up
to ``dt`` *after* ``t_stop``, silently skewing measurements -- such as
the 50% delay -- that treat the last sample as the steady state.)  A
uniform, slightly smaller step was chosen over one final partial step
so a single matrix factorization still serves every step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro import obs
from repro.errors import ParameterError, SimulationError
from repro.spice.backend import SimulationBackend, _PatternCsr, resolve_backend
from repro.spice.mna import CircuitTemplate, MnaStructure, MnaSystem, build_mna
from repro.spice.netlist import GROUND, Circuit, canonical_node
from repro.tline.waveform import Waveform

__all__ = [
    "IntegrationMethod",
    "TransientResult",
    "TransientBatchResult",
    "simulate_transient",
    "simulate_transient_batch",
]


class IntegrationMethod(str, enum.Enum):
    """Time-integration schemes."""

    BACKWARD_EULER = "backward-euler"
    TRAPEZOIDAL = "trapezoidal"


@dataclass(frozen=True)
class TransientResult:
    """Simulated waveforms for every MNA unknown.

    Attributes
    ----------
    times:
        The simulation grid, shape ``(n_steps + 1,)``; ``times[-1]`` is
        exactly ``t_stop``.
    states:
        Solution matrix, shape ``(n_steps + 1, n_unknowns)``.
    system:
        The assembled MNA system (for index lookups).
    """

    times: np.ndarray
    states: np.ndarray
    system: MnaSystem

    def voltage(self, node) -> Waveform:
        """Waveform of a node voltage (ground is the zero waveform)."""
        if canonical_node(node) == GROUND:
            return Waveform(self.times, np.zeros_like(self.times))
        row = self.system.voltage_row(node)
        return Waveform(self.times, self.states[:, row].copy())

    def current(self, element_name: str) -> Waveform:
        """Waveform of a branch current (V sources and inductors)."""
        row = self.system.current_row(element_name)
        return Waveform(self.times, self.states[:, row].copy())

    @property
    def n_steps(self) -> int:
        """Number of time steps taken."""
        return self.times.size - 1


def _time_grid(t_start: float, t_stop: float, dt: float) -> np.ndarray:
    """Uniform grid from ``t_start`` to exactly ``t_stop``.

    ``dt`` caps the step; the count is ``ceil(span / dt)`` with a
    one-part-in-1e12 snap so a span that divides ``dt`` up to float
    round-off keeps its intended step count instead of gaining a
    near-degenerate extra step.
    """
    span = t_stop - t_start
    n_steps = max(1, int(np.ceil((span / dt) * (1.0 - 1e-12))))
    return np.linspace(t_start, t_stop, n_steps + 1)


def _initial_state(
    system: MnaSystem,
    initial: str | np.ndarray,
    t0: float,
    backend: SimulationBackend,
) -> np.ndarray:
    if isinstance(initial, np.ndarray):
        if initial.shape != (system.size,):
            raise ParameterError(
                f"initial state must have shape ({system.size},), got {initial.shape}"
            )
        return initial.astype(float).copy()
    if initial == "zero":
        return np.zeros(system.size)
    if initial == "dc":
        try:
            return backend.factorize(system.g_coo).solve(system.rhs(t0))
        except SimulationError as exc:
            raise SimulationError(
                "singular DC system while computing the initial operating "
                "point; pass initial='zero' or an explicit state vector"
            ) from exc
    raise ParameterError(f"initial must be 'zero', 'dc' or a vector, got {initial!r}")


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    method: IntegrationMethod | str = IntegrationMethod.TRAPEZOIDAL,
    initial: str | np.ndarray = "dc",
    t_start: float = 0.0,
    backend: SimulationBackend | str = "auto",
    model: str = "full",
    rom_order: int | None = None,
    rom_error_bound: float | None = None,
) -> TransientResult:
    """Run a fixed-step transient analysis.

    Parameters
    ----------
    circuit:
        Netlist to simulate.
    t_stop:
        End time (seconds).  The grid always includes ``t_stop`` as its
        exact last sample (see the module docstring).
    dt:
        Maximum step size; when ``(t_stop - t_start) / dt`` is not an
        integer the actual step shrinks so the grid stays uniform and
        lands exactly on ``t_stop``.  For RLC lines, resolve the
        fastest LC period: a few hundred steps per
        ``2*pi*sqrt(L_seg * C_seg)``.
    method:
        ``"trapezoidal"`` (default) or ``"backward-euler"``.
    initial:
        ``"dc"`` (operating point with sources at ``t_start``), ``"zero"``,
        or an explicit MNA state vector.
    backend:
        Linear-solver implementation: ``"auto"`` (default; picks dense,
        banded or sparse from the system's size and bandwidth), one of
        ``"dense"``/``"sparse"``/``"banded"``, or a
        :class:`~repro.spice.backend.SimulationBackend` instance.
    model:
        Evaluation-model tier: ``"full"`` (default; the exact MNA path),
        ``"reduced"`` (answer from a PRIMA-style projection of order
        ``rom_order``, see :mod:`repro.rom`), or ``"auto"`` (reduced for
        large systems when the a-posteriori error estimate stays under
        ``rom_error_bound``, full otherwise; the decision is recorded as
        a :class:`~repro.rom.model.ModelSelection`).
    rom_order:
        Reduced order ``q`` for the non-full tiers (default
        :data:`repro.rom.prima.DEFAULT_ORDER`).
    rom_error_bound:
        Error bound the ``"auto"`` tier enforces before serving a
        reduced answer (default
        :data:`repro.rom.model.DEFAULT_ERROR_BOUND`).

    Returns
    -------
    TransientResult

    Notes
    -----
    For an ideal :class:`~repro.spice.netlist.Step` source delayed at
    ``t = 0`` with ``initial='dc'``, the operating point sees the *pre-step*
    value only if the step is strictly after ``t_start``; a step exactly at
    ``t_start`` is handled like SPICE handles it -- the initial solve uses
    the source value at ``t_start``, so place the step one ``dt`` later (or
    start from ``initial='zero'``) to capture the onset.
    """
    method = IntegrationMethod(method)
    if dt <= 0 or not np.isfinite(dt):
        raise ParameterError(f"dt must be positive and finite, got {dt}")
    if t_stop <= t_start:
        raise ParameterError("t_stop must exceed t_start")
    from repro.rom.model import resolve_model

    model = resolve_model(model)

    with obs.span("transient.simulate", method=method.value) as sp:
        system = build_mna(circuit)
        if model != "full":
            from repro.rom.model import record_model_selection

            result, selection = _transient_reduced_scalar(
                system, t_stop, dt, method, initial, t_start, backend,
                model, rom_order, rom_error_bound,
            )
            record_model_selection(selection)
            sp.set(model=selection.model, model_rule=selection.rule)
            if result is not None:
                return result
        times = _time_grid(t_start, t_stop, dt)
        n_steps = times.size - 1
        dt_eff = (t_stop - t_start) / n_steps

        if method is IntegrationMethod.BACKWARD_EULER:
            lhs = system.combine(1.0, 1.0 / dt_eff)
            history = system.c_coo.scaled(1.0 / dt_eff)
        else:
            lhs = system.combine(1.0, 2.0 / dt_eff)
            history = system.combine(-1.0, 2.0 / dt_eff)

        backend = resolve_backend(backend, lhs)
        sp.set(n=system.size, steps=n_steps, backend=backend.name)
        obs.inc("spice.transient.runs")
        obs.inc("spice.transient.steps", n_steps)
        obs.observe(
            "spice.transient.steps_per_run",
            n_steps,
            buckets=obs.COUNT_BUCKETS,
        )
        # Factor the stepping matrix before the initial-state solve: the
        # banded backend memoizes its last RCM profile, and the DC solve's
        # different G-only pattern would otherwise evict the profile that
        # resolve_backend("auto") just seeded for the LHS.
        try:
            factorization = backend.factorize(lhs)
        except SimulationError as exc:
            raise SimulationError(
                f"singular transient system matrix (backend={backend.name})"
            ) from exc
        history_op = history.to_csr()

        x = np.empty((n_steps + 1, system.size))
        x[0] = _initial_state(system, initial, t_start, backend)
        b_all = system.rhs_matrix(times)

        if method is IntegrationMethod.BACKWARD_EULER:
            for k in range(n_steps):
                rhs = b_all[k + 1] + history_op @ x[k]
                x[k + 1] = factorization.solve(rhs)
        else:
            for k in range(n_steps):
                rhs = b_all[k + 1] + b_all[k] + history_op @ x[k]
                x[k + 1] = factorization.solve(rhs)

        if not np.all(np.isfinite(x)):
            raise SimulationError(
                "transient solution diverged (non-finite values); reduce dt"
            )
        return TransientResult(times=times, states=x, system=system)


def _transient_reduced_scalar(
    system: MnaSystem,
    t_stop: float,
    dt: float,
    method: IntegrationMethod,
    initial,
    t_start: float,
    backend,
    model: str,
    rom_order: int | None,
    rom_error_bound: float | None,
):
    """Serve one transient query from the reduced tier, or decline.

    Returns ``(result, selection)``.  ``result`` is ``None`` when the
    query must run on the full path instead: ``model="auto"`` declines
    for small systems, failed projection builds, or error estimates
    over the bound (all recorded in the selection's rule), while
    ``model="reduced"`` propagates build/solve errors to the caller.
    The error estimate folds the build-time moment defect with the
    nested-suborder convergence defect of the integrated waveforms.
    """
    from repro import rom as rom_pkg

    n = system.size
    bound = (
        rom_pkg.DEFAULT_ERROR_BOUND
        if rom_error_bound is None
        else float(rom_error_bound)
    )
    if model == "auto" and n <= rom_pkg.ROM_SIZE_CUTOFF:
        return None, rom_pkg.ModelSelection("full", "auto-small-system", n)
    try:
        reduced = rom_pkg.prima_reduce(system, order=rom_order, backend=backend)
    except SimulationError:
        if model == "auto":
            return None, rom_pkg.ModelSelection("full", "auto-build-fallback", n)
        raise
    try:
        times, z = reduced.transient(
            t_stop, dt, method=method, initial=initial, t_start=t_start
        )
        states = reduced.reconstruct(z)
        estimate = reduced.moment_error
        q2 = reduced.suborder()
        if q2 < reduced.order:
            _, z2 = reduced.transient(
                t_stop, dt, method=method, initial=initial,
                t_start=t_start, order=q2,
            )
            defect = float(np.max(np.abs(states - reduced.reconstruct(z2))))
            denom = float(np.max(np.abs(states)))
            estimate = max(estimate, defect / (denom if denom > 0.0 else 1.0))
    except SimulationError:
        if model == "auto":
            return None, rom_pkg.ModelSelection(
                "full", "auto-error-fallback", n, order=reduced.order,
                error_estimate=float("inf"), error_bound=bound,
            )
        raise
    if model == "auto" and not estimate <= bound:
        return None, rom_pkg.ModelSelection(
            "full", "auto-error-fallback", n, order=reduced.order,
            error_estimate=estimate, error_bound=bound,
        )
    selection = rom_pkg.ModelSelection(
        "reduced",
        "explicit" if model == "reduced" else "auto-within-bound",
        n,
        order=reduced.order,
        error_estimate=estimate,
        error_bound=bound,
    )
    reduced.selection = selection
    result = TransientResult(times=times, states=states, system=system)
    return result, selection


# ---------------------------------------------------------------------------
# Batched (lockstep) transient over one circuit template
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransientBatchResult:
    """Waveform matrices for a batch of structure-identical circuits.

    Attributes
    ----------
    times:
        Shared grid of shape ``(n_steps + 1,)`` when every batch point
        uses the same span, else per-point grids ``(B, n_steps + 1)``.
    states:
        Solutions of shape ``(B, n_steps + 1, R)`` where ``R`` is the
        number of recorded MNA rows (all of them unless the simulation
        was given an explicit ``record`` list).
    structure:
        The shared :class:`~repro.spice.mna.MnaStructure` (for index
        lookups).
    recorded_rows:
        MNA row index of each recorded column, in column order.
    """

    times: np.ndarray
    states: np.ndarray
    structure: MnaStructure
    recorded_rows: tuple[int, ...]

    @property
    def n_points(self) -> int:
        """Number of batch points ``B``."""
        return self.states.shape[0]

    @property
    def n_steps(self) -> int:
        """Number of time steps taken (shared by every point)."""
        return self.states.shape[1] - 1

    def times_of(self, point: int) -> np.ndarray:
        """The time grid of one batch point."""
        return self.times if self.times.ndim == 1 else self.times[point]

    def _column(self, row: int) -> int:
        try:
            return self.recorded_rows.index(row)
        except ValueError:
            raise ParameterError(
                f"MNA row {row} was not recorded; pass it in record= "
                "(or record everything with record=None)"
            ) from None

    def voltage(self, node) -> np.ndarray:
        """Voltage matrix ``(B, n_steps + 1)`` of one node (ground is 0)."""
        if canonical_node(node) == GROUND:
            return np.zeros(self.states.shape[:2])
        col = self._column(self.structure.voltage_row(node))
        return self.states[:, :, col].copy()

    def current(self, element_name: str) -> np.ndarray:
        """Branch-current matrix ``(B, n_steps + 1)`` of one element."""
        col = self._column(self.structure.current_row(element_name))
        return self.states[:, :, col].copy()

    def waveform(self, point: int, node) -> Waveform:
        """One point's node voltage as a :class:`~repro.tline.waveform.Waveform`."""
        return Waveform(self.times_of(point), self.voltage(node)[point])


def _param_columns(
    template: CircuitTemplate | MnaStructure,
    params,
) -> tuple[MnaStructure, dict[str, np.ndarray], int]:
    """Normalize batch parameters to per-name columns of equal length."""
    if isinstance(template, CircuitTemplate):
        structure = template.structure
        base: dict = template.defaults
    elif isinstance(template, MnaStructure):
        structure = template
        base = {}
    else:
        raise ParameterError(
            f"expected a CircuitTemplate or MnaStructure, got {template!r}"
        )
    if isinstance(params, Mapping):
        given = {k: np.asarray(v, dtype=float).ravel() for k, v in params.items()}
    else:
        points = list(params or ())
        if not points:
            raise ParameterError("params must name at least one batch point")
        names = set().union(*(p.keys() for p in points))
        if any(set(p) != names for p in points):
            raise ParameterError(
                "every batch point must provide the same parameter names"
            )
        given = {
            name: np.asarray(
                [float(p[name]) for p in points], dtype=float
            )
            for name in names
        }
    columns = {**{k: np.asarray(v, dtype=float) for k, v in base.items()}, **given}
    sizes = {c.size for c in columns.values() if np.ndim(c) and c.size != 1}
    if len(sizes) > 1:
        raise ParameterError(
            f"parameter columns have mismatched lengths {sorted(sizes)}"
        )
    n_points = sizes.pop() if sizes else 1
    columns = {
        name: np.broadcast_to(np.asarray(col, dtype=float).ravel(), (n_points,))
        for name, col in columns.items()
    }
    return structure, columns, n_points


def _recorded_rows(structure: MnaStructure, record) -> np.ndarray:
    """Resolve a ``record`` request to MNA row indices."""
    if record is None:
        return np.arange(structure.size, dtype=np.intp)
    rows = []
    for item in record:
        if isinstance(item, (int, np.integer)):
            row = int(item)
            if not 0 <= row < structure.size:
                raise ParameterError(
                    f"recorded row {row} outside [0, {structure.size})"
                )
            rows.append(row)
        else:
            rows.append(structure.voltage_row(item))
    return np.asarray(rows, dtype=np.intp)


def simulate_transient_batch(
    template: CircuitTemplate | MnaStructure,
    params,
    t_stop,
    dt,
    method: IntegrationMethod | str = IntegrationMethod.TRAPEZOIDAL,
    initial: str | np.ndarray = "dc",
    t_start: float = 0.0,
    backend: SimulationBackend | str = "auto",
    record: Sequence | None = None,
    model: str = "full",
    rom_order: int | None = None,
    rom_error_bound: float | None = None,
) -> TransientBatchResult:
    """Step a batch of structure-identical circuits in lockstep.

    The stamp-once / re-value-many counterpart of
    :func:`simulate_transient`: the template's structure is assembled
    and analyzed once (sparsity pattern, RCM/CSC symbolic work, source
    slots), each batch point only rewrites the COO ``data`` arrays and
    refactors numerically, and the time loop advances every point
    together -- one ``(n, B)`` right-hand-side block per step, with
    points sharing identical matrices solved in a single multi-RHS
    call.  Results are identical to running :func:`simulate_transient`
    on ``template.bind(point)`` per point (the equivalence suite pins
    this to <= 1e-12 across all backends).

    Parameters
    ----------
    template:
        A :class:`~repro.spice.mna.CircuitTemplate` (or a bare
        :class:`~repro.spice.mna.MnaStructure`).
    params:
        The batch: either a mapping of parameter name to length-``B``
        value columns (scalars broadcast), or a sequence of ``B``
        per-point ``{name: value}`` mappings.  Template defaults fill
        any name not supplied.
    t_stop, dt:
        End time and maximum step, each a scalar or a length-``B``
        array.  Every point must resolve to the *same number of steps*
        (lockstep); per-point spans with a shared sample count -- e.g.
        ``dt = span / (n_samples - 1)`` -- satisfy this naturally.
    method, initial, t_start, backend:
        As in :func:`simulate_transient`; ``initial`` may also be a
        ``(B, n)`` matrix of per-point start states.
    record:
        Optional sequence of node names (or raw MNA row indices) to
        record; ``None`` records every unknown.  Recording only the
        probed nodes keeps the result at ``O(B * n_steps)`` memory for
        large systems.
    model, rom_order, rom_error_bound:
        Evaluation-model tier, as in :func:`simulate_transient`.  The
        reduced tier composes with the template split: the projection
        is built once (and cached across chunked calls), each value
        point pays only ``O(groups * q^2)`` projected revaluation, and
        under ``model="auto"`` individual points whose error estimate
        exceeds the bound are transparently re-run on the full path.

    Notes
    -----
    Each *distinct* batch point holds its numeric factorization alive
    for the whole run; for systems of many thousands of unknowns keep
    batches to a few dozen points and chunk larger sweeps (the sweep
    runner does this automatically).
    """
    method = IntegrationMethod(method)
    structure, columns, n_points = _param_columns(template, params)
    size = structure.size

    t_stop = np.broadcast_to(
        np.asarray(t_stop, dtype=float).ravel(), (n_points,)
    )
    dt = np.broadcast_to(np.asarray(dt, dtype=float).ravel(), (n_points,))
    if np.any(dt <= 0) or not np.all(np.isfinite(dt)):
        raise ParameterError("dt must be positive and finite for every point")
    if np.any(t_stop <= t_start):
        raise ParameterError("t_stop must exceed t_start for every point")

    spans = t_stop - t_start
    steps = np.maximum(
        1, np.ceil((spans / dt) * (1.0 - 1e-12)).astype(int)
    )
    if np.unique(steps).size != 1:
        raise ParameterError(
            f"lockstep batch needs one shared step count, got {sorted(set(steps.tolist()))}; "
            "derive dt from the span (dt = span / n_steps) per point"
        )
    n_steps = int(steps[0])
    dt_eff = spans / n_steps
    shared_grid = bool(np.all(t_stop == t_stop[0]))
    if shared_grid:
        times: np.ndarray = np.linspace(t_start, float(t_stop[0]), n_steps + 1)
    else:
        # Per-point grids, built with the same linspace as the scalar
        # path so batch and per-point runs sample identical instants.
        times = np.empty((n_points, n_steps + 1))
        for j in range(n_points):
            times[j] = np.linspace(t_start, float(t_stop[j]), n_steps + 1)

    from repro.rom.model import resolve_model

    model = resolve_model(model)

    with obs.span(
        "transient.batch", points=n_points, steps=n_steps, method=method.value
    ) as sp:
        if model != "full":
            reduced_result = _transient_batch_reduced(
                template, structure, columns, n_points, times, dt_eff,
                t_stop, dt, method, initial, t_start, backend, record,
                model, rom_order, rom_error_bound, sp,
            )
            if reduced_result is not None:
                return reduced_result
        g_data, c_data = structure.revalue_many(columns)
        pattern = structure.combined_pattern()
        backend = resolve_backend(backend, pattern)
        factorizer = backend.factorizer(pattern)
        sp.set(n=size, backend=backend.name)
        obs.inc("spice.transient.batch_runs")
        obs.inc("spice.transient.batch_points", n_points)
        obs.observe(
            "spice.transient.batch_width", n_points, buckets=obs.COUNT_BUCKETS
        )
        obs.observe(
            "spice.transient.steps_per_run", n_steps, buckets=obs.COUNT_BUCKETS
        )

        if method is IntegrationMethod.BACKWARD_EULER:
            weight = 1.0 / dt_eff
            g_hist_sign = 0.0
        else:
            weight = 2.0 / dt_eff
            g_hist_sign = -1.0

        # Structure-identical points with identical values share one
        # numeric factorization (and one multi-RHS solve per step).
        group_of: dict[tuple, int] = {}
        group_members: list[list[int]] = []
        for j in range(n_points):
            key = (g_data[j].tobytes(), c_data[j].tobytes(), float(dt_eff[j]))
            slot = group_of.setdefault(key, len(group_members))
            if slot == len(group_members):
                group_members.append([])
            group_members[slot].append(j)

        csr_map = _PatternCsr(pattern)
        groups = []
        for members in group_members:
            j = members[0]
            lhs = np.concatenate([g_data[j], weight[j] * c_data[j]])
            hist = np.concatenate([g_hist_sign * g_data[j], weight[j] * c_data[j]])
            try:
                fact = factorizer.refactorize(lhs)
            except SimulationError as exc:
                raise SimulationError(
                    f"singular transient system matrix (backend={backend.name}) "
                    f"at batch point {j}"
                ) from exc
            groups.append((members, fact, csr_map.matrix(hist)))
        sp.set(groups=len(groups))
        obs.inc("spice.transient.factorizations", len(groups))
        obs.inc(
            "spice.transient.shared_factorization_reuse",
            n_points - len(groups),
        )

        # States live as (B, n): each point's vector is one contiguous row.
        x = _batch_initial_state(
            structure, g_data, initial, t_start, backend, group_members
        )

        rec_rows = _recorded_rows(structure, record)
        states = np.empty((n_points, n_steps + 1, rec_rows.size))
        states[:, 0, :] = x[:, rec_rows]

        if shared_grid:
            b_all = _rhs_matrix(structure, times)  # (n_steps + 1, size)
        else:
            b_prev = _rhs_rows(structure, times[:, 0])  # (B, size)

        trapezoidal = method is IntegrationMethod.TRAPEZOIDAL
        for k in range(n_steps):
            if shared_grid:
                b_term = b_all[k + 1] + b_all[k] if trapezoidal else b_all[k + 1]
            else:
                b_next = _rhs_rows(structure, times[:, k + 1])
                b_term = b_next + b_prev if trapezoidal else b_next
                b_prev = b_next
            x_next = np.empty_like(x)
            for members, fact, hist_op in groups:
                if len(members) == 1:
                    j = members[0]
                    rhs = hist_op @ x[j]
                    rhs += b_term if shared_grid else b_term[j]
                    x_next[j] = fact.solve(rhs)
                else:
                    rhs = hist_op @ x[members].T
                    if shared_grid:
                        rhs += b_term[:, None]
                    else:
                        rhs += b_term[members].T
                    x_next[members] = fact.solve_many(rhs).T
            x = x_next
            states[:, k + 1, :] = x[:, rec_rows]

        if not (np.all(np.isfinite(states)) and np.all(np.isfinite(x))):
            raise SimulationError(
                "batched transient solution diverged (non-finite values); reduce dt"
            )
        return TransientBatchResult(
            times=times,
            states=states,
            structure=structure,
            recorded_rows=tuple(int(r) for r in rec_rows),
        )


def _transient_batch_reduced(
    template,
    structure: MnaStructure,
    columns: dict,
    n_points: int,
    times: np.ndarray,
    dt_eff: np.ndarray,
    t_stop: np.ndarray,
    dt: np.ndarray,
    method: IntegrationMethod,
    initial,
    t_start: float,
    backend,
    record,
    model: str,
    rom_order: int | None,
    rom_error_bound: float | None,
    sp,
):
    """Serve a lockstep batch from the reduced tier, or decline.

    Returns a :class:`TransientBatchResult`, or ``None`` when the whole
    batch must run on the full path (``model="auto"`` on a small system
    or after a failed projection build).  Under ``model="auto"``,
    individual points whose a-posteriori error estimate exceeds the
    bound are transparently re-run through
    :func:`simulate_transient_batch` with ``model="full"`` and merged
    back, so the caller always receives one result covering every
    point.  The projection is resolved through
    :func:`repro.rom.prima.cached_reduced_template`, so chunked sweeps
    over the same structure pay the Arnoldi build once.
    """
    from repro import rom as rom_pkg
    from repro.rom.model import record_model_selection

    size = structure.size
    bound = (
        rom_pkg.DEFAULT_ERROR_BOUND
        if rom_error_bound is None
        else float(rom_error_bound)
    )
    if model == "auto" and size <= rom_pkg.ROM_SIZE_CUTOFF:
        record_model_selection(
            rom_pkg.ModelSelection("full", "auto-small-system", size), n_points
        )
        sp.set(model="full", model_rule="auto-small-system")
        return None

    # One basis serves the whole batch: project at the box midpoint and
    # enrich so accuracy holds across the value range, not just near
    # one point.  On a shared time grid the enrichment is POD-style --
    # full-path transient trajectories at the box center and corners
    # feed the basis (snapshots track strongly coupled structures far
    # better per column than corner Krylov unions) -- and the snapshot
    # collection cost is paid only on a projection-cache miss.
    # Per-point grids keep the corner-Krylov enrichment instead.
    nominal, samples = rom_pkg.corner_samples(columns)
    sample_params: tuple = samples
    snapshot_key = None
    snapshot_builder = None
    if samples and times.ndim == 1:
        n_steps = times.shape[0] - 1
        if isinstance(initial, np.ndarray):
            init_tag = ("array", initial.shape, hash(initial.tobytes()))
        else:
            init_tag = initial
        snapshot_key = (
            samples, method.value, n_steps, float(t_stop[0]),
            float(t_start), init_tag,
        )
        sample_params = ()
        snap_points = [nominal] + [dict(point) for point in samples]

        def snapshot_builder():
            cols = {
                name: np.asarray([point[name] for point in snap_points])
                for name in nominal
            }
            per_point_initial = (
                isinstance(initial, np.ndarray)
                and initial.shape == (n_points, size)
            )
            result = simulate_transient_batch(
                structure,
                cols,
                float(t_stop[0]),
                (float(t_stop[0]) - t_start) / n_steps,
                method=method,
                initial="dc" if per_point_initial else initial,
                t_start=t_start,
                backend=backend,
                model="full",
            )
            snaps = result.states.reshape(-1, size).T
            if per_point_initial:
                # Per-point start states cannot ride along the sample
                # trajectories, so a spread of them joins the snapshot
                # cloud directly (they are what z0 is projected from).
                picks = np.unique(
                    np.linspace(0, n_points - 1, 32).astype(np.intp)
                )
                snaps = np.hstack([snaps, initial[picks].T])
            return snaps

    try:
        reduced_template = rom_pkg.cached_reduced_template(
            structure, rom_order, nominal, backend=backend,
            sample_params=sample_params,
            snapshot_key=snapshot_key,
            snapshot_builder=snapshot_builder,
        )
    except SimulationError:
        if model == "auto":
            record_model_selection(
                rom_pkg.ModelSelection("full", "auto-build-fallback", size),
                n_points,
            )
            sp.set(model="full", model_rule="auto-build-fallback")
            return None
        raise

    rom = reduced_template.rom
    rec_rows = _recorded_rows(structure, record)
    states, estimates = rom_pkg.reduced_transient_batch(
        reduced_template, columns, times, dt_eff, method, initial, rec_rows,
        estimates=(model == "auto"),
    )
    sp.set(n=size, order=rom.order)

    if model == "reduced":
        if not np.all(np.isfinite(states)):
            raise SimulationError(
                "reduced batched transient solution diverged (non-finite "
                "values); raise rom_order, reduce dt, or use model='full'"
            )
        selection = rom_pkg.ModelSelection(
            "reduced", "explicit", size, order=rom.order,
            error_estimate=rom.moment_error, error_bound=bound,
        )
        rom.selection = selection
        record_model_selection(selection, n_points)
        sp.set(model="reduced", model_rule="explicit")
        return TransientBatchResult(
            times=times,
            states=states,
            structure=structure,
            recorded_rows=tuple(int(r) for r in rec_rows),
        )

    # model == "auto": points over the bound (or with non-finite
    # estimates) fall back to the full path individually.
    bad = ~(estimates <= bound)
    n_bad = int(np.count_nonzero(bad))
    n_ok = n_points - n_bad
    if n_ok:
        selection = rom_pkg.ModelSelection(
            "reduced", "auto-within-bound", size, order=rom.order,
            error_estimate=float(np.max(estimates[~bad])), error_bound=bound,
        )
        rom.selection = selection
        record_model_selection(selection, n_ok)
    if n_bad:
        worst = float(np.max(estimates[bad]))
        record_model_selection(
            rom_pkg.ModelSelection(
                "full", "auto-error-fallback", size, order=rom.order,
                error_estimate=worst, error_bound=bound,
            ),
            n_bad,
        )
        sub_params = {name: col[bad] for name, col in columns.items()}
        sub_initial = (
            initial[bad]
            if isinstance(initial, np.ndarray)
            and initial.shape == (n_points, size)
            else initial
        )
        full_result = simulate_transient_batch(
            structure,
            sub_params,
            t_stop[bad],
            dt[bad],
            method=method,
            initial=sub_initial,
            t_start=t_start,
            backend=backend,
            record=record,
            model="full",
        )
        states[bad] = full_result.states
    sp.set(
        model="reduced" if n_ok else "full",
        model_rule="auto-within-bound" if n_ok else "auto-error-fallback",
        rom_fallbacks=n_bad,
    )
    return TransientBatchResult(
        times=times,
        states=states,
        structure=structure,
        recorded_rows=tuple(int(r) for r in rec_rows),
    )


def _rhs_matrix(structure: MnaStructure, times: np.ndarray) -> np.ndarray:
    """``b(t)`` rows for a shared time grid, shape ``(len(times), size)``."""
    b = np.zeros((times.size, structure.size))
    for row, sign, waveform in structure.source_rows:
        b[:, row] += sign * np.asarray(waveform(times), dtype=float)
    return b


def _rhs_rows(structure: MnaStructure, t_points: np.ndarray) -> np.ndarray:
    """``b`` at per-point times, one row per point: shape ``(B, size)``."""
    b = np.zeros((t_points.size, structure.size))
    for row, sign, waveform in structure.source_rows:
        b[:, row] += sign * np.asarray(waveform(t_points), dtype=float)
    return b


def _batch_initial_state(
    structure: MnaStructure,
    g_data: np.ndarray,
    initial,
    t_start: float,
    backend: SimulationBackend,
    group_members: list[list[int]],
) -> np.ndarray:
    """Per-point start states as a ``(B, n)`` matrix (one row per point)."""
    size = structure.size
    n_points = g_data.shape[0]
    if isinstance(initial, np.ndarray):
        if initial.shape == (size,):
            return np.repeat(initial.astype(float)[None, :], n_points, axis=0)
        if initial.shape == (n_points, size):
            return initial.astype(float).copy()
        raise ParameterError(
            f"initial state must have shape ({size},) or ({n_points}, {size}), "
            f"got {initial.shape}"
        )
    if initial == "zero":
        return np.zeros((n_points, size))
    if initial != "dc":
        raise ParameterError(
            f"initial must be 'zero', 'dc' or a vector, got {initial!r}"
        )
    g_factorizer = backend.factorizer(structure.g_pattern())
    b0 = np.zeros(size)
    for row, sign, waveform in structure.source_rows:
        b0[row] += sign * waveform.value_at(t_start)
    x = np.empty((n_points, size))
    solved: dict[bytes, np.ndarray] = {}
    for members in group_members:
        j = members[0]
        key = g_data[j].tobytes()
        x0 = solved.get(key)
        if x0 is None:
            try:
                x0 = g_factorizer.refactorize(g_data[j]).solve(b0)
            except SimulationError as exc:
                raise SimulationError(
                    "singular DC system while computing the initial operating "
                    f"point of batch point {j}; pass initial='zero' or an "
                    "explicit state matrix"
                ) from exc
            solved[key] = x0
        x[members] = x0[None, :]
    return x
