"""Transient simulation of linear circuits.

Solves the MNA system ``G x + C dx/dt = b(t)`` on a fixed time grid with
either of the two classic companion-model integrators:

``backward-euler``
    L-stable, first order.  Heavily damps numerical ringing; good for
    quick-and-dirty runs.

``trapezoidal``
    A-stable, second order, the SPICE default.  Preserves the oscillatory
    energy of underdamped RLC lines, which is exactly what the paper's
    experiments probe, so it is the default here too.

Both reduce each step to one linear solve with a *constant* matrix
(fixed ``dt``), which is LU-factorized once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.errors import ParameterError, SimulationError
from repro.spice.mna import MnaSystem, build_mna
from repro.spice.netlist import GROUND, Circuit, canonical_node
from repro.tline.waveform import Waveform

__all__ = ["IntegrationMethod", "TransientResult", "simulate_transient"]


class IntegrationMethod(str, enum.Enum):
    """Time-integration schemes."""

    BACKWARD_EULER = "backward-euler"
    TRAPEZOIDAL = "trapezoidal"


@dataclass(frozen=True)
class TransientResult:
    """Simulated waveforms for every MNA unknown.

    Attributes
    ----------
    times:
        The simulation grid, shape ``(n_steps + 1,)``.
    states:
        Solution matrix, shape ``(n_steps + 1, n_unknowns)``.
    system:
        The assembled MNA system (for index lookups).
    """

    times: np.ndarray
    states: np.ndarray
    system: MnaSystem

    def voltage(self, node) -> Waveform:
        """Waveform of a node voltage (ground is the zero waveform)."""
        if canonical_node(node) == GROUND:
            return Waveform(self.times, np.zeros_like(self.times))
        row = self.system.voltage_row(node)
        return Waveform(self.times, self.states[:, row].copy())

    def current(self, element_name: str) -> Waveform:
        """Waveform of a branch current (V sources and inductors)."""
        row = self.system.current_row(element_name)
        return Waveform(self.times, self.states[:, row].copy())

    @property
    def n_steps(self) -> int:
        """Number of time steps taken."""
        return self.times.size - 1


def _initial_state(
    system: MnaSystem, initial: str | np.ndarray, t0: float
) -> np.ndarray:
    if isinstance(initial, np.ndarray):
        if initial.shape != (system.size,):
            raise ParameterError(
                f"initial state must have shape ({system.size},), got {initial.shape}"
            )
        return initial.astype(float).copy()
    if initial == "zero":
        return np.zeros(system.size)
    if initial == "dc":
        try:
            return np.linalg.solve(system.g, system.rhs(t0))
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                "singular DC system while computing the initial operating "
                "point; pass initial='zero' or an explicit state vector"
            ) from exc
    raise ParameterError(f"initial must be 'zero', 'dc' or a vector, got {initial!r}")


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    method: IntegrationMethod | str = IntegrationMethod.TRAPEZOIDAL,
    initial: str | np.ndarray = "dc",
    t_start: float = 0.0,
) -> TransientResult:
    """Run a fixed-step transient analysis.

    Parameters
    ----------
    circuit:
        Netlist to simulate.
    t_stop:
        End time (seconds); the grid is ``t_start, t_start + dt, ...``.
    dt:
        Fixed step size.  For RLC lines, resolve the fastest LC period:
        a few hundred steps per ``2*pi*sqrt(L_seg * C_seg)``.
    method:
        ``"trapezoidal"`` (default) or ``"backward-euler"``.
    initial:
        ``"dc"`` (operating point with sources at ``t_start``), ``"zero"``,
        or an explicit MNA state vector.

    Returns
    -------
    TransientResult

    Notes
    -----
    For an ideal :class:`~repro.spice.netlist.Step` source delayed at
    ``t = 0`` with ``initial='dc'``, the operating point sees the *pre-step*
    value only if the step is strictly after ``t_start``; a step exactly at
    ``t_start`` is handled like SPICE handles it -- the initial solve uses
    the source value at ``t_start``, so place the step one ``dt`` later (or
    start from ``initial='zero'``) to capture the onset.
    """
    method = IntegrationMethod(method)
    if dt <= 0 or not np.isfinite(dt):
        raise ParameterError(f"dt must be positive and finite, got {dt}")
    if t_stop <= t_start:
        raise ParameterError("t_stop must exceed t_start")

    system = build_mna(circuit)
    n_steps = int(np.ceil((t_stop - t_start) / dt))
    times = t_start + dt * np.arange(n_steps + 1)

    x = np.empty((n_steps + 1, system.size))
    x[0] = _initial_state(system, initial, t_start)

    g, c = system.g, system.c
    b_all = system.rhs_matrix(times)

    if method is IntegrationMethod.BACKWARD_EULER:
        lhs = g + c / dt
    else:
        lhs = g + 2.0 * c / dt

    try:
        lu, piv = scipy.linalg.lu_factor(lhs)
    except scipy.linalg.LinAlgError as exc:  # pragma: no cover - rare
        raise SimulationError("singular transient system matrix") from exc

    if method is IntegrationMethod.BACKWARD_EULER:
        c_over_dt = c / dt
        for k in range(n_steps):
            rhs = b_all[k + 1] + c_over_dt @ x[k]
            x[k + 1] = scipy.linalg.lu_solve((lu, piv), rhs)
    else:
        history = 2.0 * c / dt - g
        for k in range(n_steps):
            rhs = b_all[k + 1] + b_all[k] + history @ x[k]
            x[k + 1] = scipy.linalg.lu_solve((lu, piv), rhs)

    if not np.all(np.isfinite(x)):
        raise SimulationError(
            "transient solution diverged (non-finite values); reduce dt"
        )
    return TransientResult(times=times, states=x, system=system)
