"""Exact integration of LTI state-space models.

For a linear time-invariant system

    dx/dt = A x + B u,    y = C x + D u

driven by a *piecewise-constant* input (e.g. the ideal step of the paper),
the solution between breakpoints is exact:

    x(t + dt) = E x(t) + F u,  with  E = expm(A dt),
    F = integral_0^dt expm(A tau) dtau  B.

Both ``E`` and ``F`` are obtained together from one matrix exponential of
the augmented matrix ``[[A, B], [0, 0]]`` (Van Loan's trick), which also
handles singular ``A`` gracefully.  Stepping is then a single mat-vec per
sample: no discretization error at the sample points, no stability limit.

This is the third, fully independent route to the paper's "dynamic
circuit simulation" results (alongside MNA transient integration and
inverse-Laplace of the exact line).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.errors import ParameterError, SimulationError
from repro.tline.waveform import Waveform

__all__ = ["StateSpace", "simulate_step"]


@dataclass(frozen=True)
class StateSpace:
    """An LTI system ``dx/dt = A x + B u``, ``y = C x + D u``.

    ``B`` may have one or more input columns; ``C`` one or more output
    rows.  ``D`` defaults to zeros.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray | None = None

    def __post_init__(self) -> None:
        a = np.atleast_2d(np.asarray(self.a, dtype=float))
        b = np.asarray(self.b, dtype=float)
        if b.ndim == 1:
            b = b[:, None]
        c = np.asarray(self.c, dtype=float)
        if c.ndim == 1:
            c = c[None, :]
        n = a.shape[0]
        if a.shape != (n, n):
            raise ParameterError(f"A must be square, got {a.shape}")
        if b.shape[0] != n:
            raise ParameterError(f"B must have {n} rows, got {b.shape}")
        if c.shape[1] != n:
            raise ParameterError(f"C must have {n} columns, got {c.shape}")
        d = self.d
        if d is None:
            d = np.zeros((c.shape[0], b.shape[1]))
        else:
            d = np.atleast_2d(np.asarray(d, dtype=float))
            if d.shape != (c.shape[0], b.shape[1]):
                raise ParameterError(
                    f"D must have shape {(c.shape[0], b.shape[1])}, got {d.shape}"
                )
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "d", d)

    @property
    def order(self) -> int:
        """Number of state variables."""
        return self.a.shape[0]

    @property
    def n_inputs(self) -> int:
        """Number of input columns."""
        return self.b.shape[1]

    @property
    def n_outputs(self) -> int:
        """Number of output rows."""
        return self.c.shape[0]

    def discretize(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Exact zero-order-hold discretization ``(E, F)`` for step ``dt``."""
        if dt <= 0 or not np.isfinite(dt):
            raise ParameterError(f"dt must be positive and finite, got {dt}")
        n, m = self.order, self.n_inputs
        aug = np.zeros((n + m, n + m))
        aug[:n, :n] = self.a * dt
        aug[:n, n:] = self.b * dt
        phi = scipy.linalg.expm(aug)
        return phi[:n, :n], phi[:n, n:]

    def transfer_at(self, s) -> np.ndarray:
        """Transfer matrix ``C (sI - A)^{-1} B + D`` at complex ``s``.

        Returns an array of shape ``(len(s), n_outputs, n_inputs)``.
        """
        s = np.atleast_1d(np.asarray(s, dtype=complex))
        eye = np.eye(self.order)
        out = np.empty((s.size, self.n_outputs, self.n_inputs), dtype=complex)
        for k, sk in enumerate(s):
            try:
                x = np.linalg.solve(sk * eye - self.a, self.b)
            except np.linalg.LinAlgError as exc:
                raise SimulationError(f"(sI - A) singular at s = {sk}") from exc
            out[k] = self.c @ x + self.d
        return out


def simulate_step(
    system: StateSpace,
    t_stop: float,
    n_samples: int = 1001,
    u: float | np.ndarray = 1.0,
    x0: np.ndarray | None = None,
) -> list[Waveform]:
    """Simulate the response to a constant input applied at ``t = 0``.

    Parameters
    ----------
    system:
        The LTI model.
    t_stop:
        End time; samples are uniform on ``[0, t_stop]``.
    n_samples:
        Number of output samples (including ``t = 0``).
    u:
        The constant input vector (scalar broadcast to all inputs).
    x0:
        Initial state (defaults to rest).

    Returns
    -------
    list[Waveform]
        One waveform per system output.  Values at the sample points are
        exact (up to the accuracy of ``expm``).
    """
    if n_samples < 2:
        raise ParameterError(f"n_samples must be >= 2, got {n_samples}")
    if t_stop <= 0 or not np.isfinite(t_stop):
        raise ParameterError(f"t_stop must be positive and finite, got {t_stop}")
    u_vec = np.broadcast_to(np.asarray(u, dtype=float).ravel(), (system.n_inputs,))
    x = np.zeros(system.order) if x0 is None else np.asarray(x0, dtype=float).copy()
    if x.shape != (system.order,):
        raise ParameterError(f"x0 must have shape ({system.order},), got {x.shape}")

    times = np.linspace(0.0, t_stop, n_samples)
    dt = times[1] - times[0]
    e, f = system.discretize(dt)
    fu = f @ u_vec
    du = system.d @ u_vec

    outputs = np.empty((n_samples, system.n_outputs))
    outputs[0] = system.c @ x + du
    for k in range(1, n_samples):
        x = e @ x + fu
        outputs[k] = system.c @ x + du
    if not np.all(np.isfinite(outputs)):
        raise SimulationError("state-space simulation produced non-finite values")
    return [Waveform(times, outputs[:, j].copy()) for j in range(system.n_outputs)]
