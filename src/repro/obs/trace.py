"""Hierarchical span tracing on ``time.perf_counter_ns``.

A *span* is one timed region of work with a name, free-form attributes
and children::

    with obs.span("transient.batch", points=32, backend="banded") as sp:
        ...
        sp.set(steps=n_steps)

Parenting is implicit through a :mod:`contextvars` context variable:
a span entered while another is open becomes its child, across
``await`` points and in each worker thread independently (every thread
starts its own root list entry).  Finished roots accumulate in a
process-wide buffer until :func:`clear_trace` (or ``obs.reset()``).

When the layer is disabled (:func:`repro.obs.enable` not called)
:func:`span` returns one shared pre-allocated no-op object whose
``__enter__``/``__exit__``/``set`` do nothing -- the instrumented code
pays a single branch, never an allocation.  This is what lets spans
live permanently inside the simulation stack.
"""

from __future__ import annotations

import contextvars
import threading
import time

from repro.obs._state import _STATE

__all__ = [
    "Span",
    "NOOP_SPAN",
    "span",
    "current_span",
    "trace_roots",
    "clear_trace",
]

#: The innermost open span of the current thread/context (or None).
_current: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

_roots: list["Span"] = []
_roots_lock = threading.Lock()


class Span:
    """One timed region: name, attributes, children, ns timestamps.

    Use as a context manager (usually via :func:`span`); attributes may
    be given at creation or added later with :meth:`set`.  Timestamps
    come from :func:`time.perf_counter_ns`; :attr:`end_ns` is ``None``
    while the span is still open.
    """

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children", "_token")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = dict(attrs or {})
        self.start_ns: int = 0
        self.end_ns: int | None = None
        self.children: list[Span] = []
        self._token = None

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (up to now for a still-open span)."""
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return end - self.start_ns

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (convenience over :attr:`duration_ns`)."""
        return self.duration_ns * 1e-9

    def __enter__(self) -> "Span":
        parent = _current.get()
        if parent is None:
            with _roots_lock:
                _roots.append(self)
        else:
            parent.children.append(self)
        self._token = _current.set(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _current.reset(self._token)
        self._token = None
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end_ns is None else f"{self.duration_ns}ns"
        return f"Span({self.name!r}, {state}, attrs={self.attrs!r})"


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        """Ignore attributes (mirrors :meth:`Span.set`)."""
        return self


#: The single no-op instance every disabled ``span()`` call returns.
NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs):
    """Open a span named ``name`` (context manager).

    The fast path: when the layer is disabled this returns the shared
    :data:`NOOP_SPAN` without allocating anything.  Attribute values
    should be cheap scalars (numbers, short strings); they are stored
    as-is and rendered only at report time.
    """
    if not _STATE.on:
        return NOOP_SPAN
    return Span(name, attrs)


def current_span() -> Span | None:
    """The innermost open :class:`Span` of this context, or ``None``."""
    return _current.get()


def trace_roots() -> list[Span]:
    """Snapshot (shallow copy) of the finished/open root spans."""
    with _roots_lock:
        return list(_roots)


def clear_trace() -> None:
    """Drop every recorded root span (open spans keep collecting)."""
    with _roots_lock:
        _roots.clear()
