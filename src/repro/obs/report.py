"""Emitters: span-tree text, metrics text/JSON, benchmark artifact.

Three consumers, three shapes:

- :func:`render_trace` -- a human-readable tree of the recorded spans
  (durations, attributes, nesting) for ``--trace`` CLI output;
- :func:`metrics_payload` / :func:`write_metrics` -- a flat,
  schema-versioned JSON document of every counter/gauge/histogram
  series, the machine-readable artifact ``--metrics-out`` and the CI
  benchmark-smoke job emit;
- :func:`benchmark_payload` -- the histogram series re-shaped into a
  pytest-benchmark-style ``{"benchmarks": [{name, stats}]}`` list so
  perf dashboards that already parse ``benchmark-results.json`` can
  ingest the telemetry with the same code path.

All emitters read from the process-wide defaults
(:data:`repro.obs.metrics.REGISTRY`, the trace root buffer) unless an
explicit registry / span list is passed.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import Span, trace_roots

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "render_trace",
    "render_metrics",
    "metrics_payload",
    "benchmark_payload",
    "write_metrics",
    "elapsed_s",
    "reset_elapsed",
]

#: Schema tag stamped into every metrics JSON document.
METRICS_SCHEMA_VERSION = 1

#: Monotonic anchor of the ``elapsed_s`` payload field (mutable cell
#: so :func:`reset_elapsed` can restart the clock).
_ELAPSED_ANCHOR = [time.perf_counter()]


def reset_elapsed() -> None:
    """Restart the monotonic collection clock.

    Called by :func:`repro.obs.reset` so ``elapsed_s`` measures the
    current collection window, not process lifetime.
    """
    _ELAPSED_ANCHOR[0] = time.perf_counter()


def elapsed_s() -> float:
    """Monotonic seconds since import or the last ``obs.reset()``.

    This -- not the wall-clock ``unix_time`` stamp -- is the value to
    read wherever elapsed time is reported: ``time.perf_counter`` is
    immune to NTP steps and DST, while ``time.time`` is only suitable
    for labeling *when* a document was produced (OBS002 codifies the
    distinction).
    """
    return time.perf_counter() - _ELAPSED_ANCHOR[0]


def _format_duration(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.2f} us"
    return f"{ns} ns"


def _format_attr(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_trace(roots: list[Span] | None = None) -> str:
    """Render spans as an indented tree with durations and attributes.

    ``roots`` defaults to the process-wide recorded roots
    (:func:`repro.obs.trace.trace_roots`).  Example::

        sweep.run  31.2 ms  quantity=simulated_delay_50 points=4
        +- transient.batch  29.0 ms  points=4 steps=500 backend=banded

    Returns ``"(no spans recorded)"`` when nothing was traced.
    """
    roots = trace_roots() if roots is None else roots
    if not roots:
        return "(no spans recorded)"
    lines: list[str] = []

    def _emit(span: Span, prefix: str, child_prefix: str) -> None:
        attrs = " ".join(
            f"{k}={_format_attr(v)}" for k, v in span.attrs.items()
        )
        open_mark = "" if span.end_ns is not None else "  [open]"
        lines.append(
            f"{prefix}{span.name}  {_format_duration(span.duration_ns)}"
            f"{'  ' + attrs if attrs else ''}{open_mark}"
        )
        for i, child in enumerate(span.children):
            last = i == len(span.children) - 1
            branch = "`- " if last else "+- "
            extend = "   " if last else "|  "
            _emit(child, child_prefix + branch, child_prefix + extend)

    for root in roots:
        _emit(root, "", "")
    return "\n".join(lines)


def render_metrics(registry: MetricsRegistry | None = None) -> str:
    """Compact text block of every metric series (for report footers).

    One line per series: ``name{labels} = value`` for counters and
    gauges, ``name{labels}: n=..., mean=..., min/max=...`` for
    histograms.  Returns ``"(no metrics recorded)"`` when empty.
    """
    snap = (registry or REGISTRY).snapshot()
    lines: list[str] = []

    def _series_label(entry: dict) -> str:
        labels = entry.get("labels") or {}
        if not labels:
            return ""
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return "{" + inner + "}"

    for name, entries in snap["counters"].items():
        for entry in entries:
            lines.append(
                f"{name}{_series_label(entry)} = {entry['value']:g}"
            )
    for name, entries in snap["gauges"].items():
        for entry in entries:
            lines.append(
                f"{name}{_series_label(entry)} = {entry['value']:g}"
            )
    for name, entries in snap["histograms"].items():
        for entry in entries:
            lines.append(
                f"{name}{_series_label(entry)}: n={entry['count']}, "
                f"mean={entry['mean']:.4g}, min={entry['min']:.4g}, "
                f"max={entry['max']:.4g}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def metrics_payload(
    registry: MetricsRegistry | None = None,
    extra: dict | None = None,
) -> dict:
    """The flat JSON metrics document (a plain dict, ready to dump).

    Contains the schema version, a wall-clock timestamp, the full
    registry snapshot and -- for dashboard convenience -- the
    pytest-benchmark-shaped view of the histograms under
    ``"benchmarks"``.  ``extra`` entries are merged at the top level
    (callers use it for run context such as the CLI argument vector).
    """
    registry = registry or REGISTRY
    payload = {
        "schema": METRICS_SCHEMA_VERSION,
        "generated_by": "repro.obs",
        # Wall-clock stamp labels *when* the document was produced;
        # every duration in the payload is monotonic.
        "unix_time": time.time(),  # repro-lint: disable=OBS002
        "elapsed_s": elapsed_s(),
        "metrics": registry.snapshot(),
        "benchmarks": benchmark_payload(registry)["benchmarks"],
    }
    if extra:
        payload.update(extra)
    return payload


def benchmark_payload(registry: MetricsRegistry | None = None) -> dict:
    """Histogram series as a pytest-benchmark-compatible document.

    Every histogram series becomes one entry of the ``"benchmarks"``
    list with the ``stats`` keys pytest-benchmark consumers read
    (``min``/``max``/``mean``/``stddev``/``rounds``/``total``), named
    ``<metric>[label=value,...]``.  Counters ride along inside
    ``extra_info`` of a synthetic ``repro.obs.counters`` entry so the
    artifact is self-contained.
    """
    registry = registry or REGISTRY
    snap = registry.snapshot()
    benchmarks: list[dict] = []
    for name, entries in snap["histograms"].items():
        for entry in entries:
            labels = entry.get("labels") or {}
            suffix = (
                "[" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "]"
                if labels
                else ""
            )
            full = f"{name}{suffix}"
            benchmarks.append(
                {
                    "group": name,
                    "name": full,
                    "fullname": full,
                    "params": labels or None,
                    "stats": {
                        "min": entry["min"],
                        "max": entry["max"],
                        "mean": entry["mean"],
                        "stddev": entry["stddev"],
                        "rounds": entry["count"],
                        "total": entry["sum"],
                    },
                }
            )
    counters = {
        f"{name}{'' if not e.get('labels') else str(e['labels'])}": e["value"]
        for name, entries in snap["counters"].items()
        for e in entries
    }
    if counters:
        benchmarks.append(
            {
                "group": "repro.obs.counters",
                "name": "repro.obs.counters",
                "fullname": "repro.obs.counters",
                "params": None,
                "stats": {
                    "min": 0.0,
                    "max": 0.0,
                    "mean": 0.0,
                    "stddev": 0.0,
                    "rounds": 1,
                    "total": 0.0,
                },
                "extra_info": counters,
            }
        )
    return {"version": "repro.obs", "benchmarks": benchmarks}


def write_metrics(
    path: str | os.PathLike,
    registry: MetricsRegistry | None = None,
    extra: dict | None = None,
) -> pathlib.Path:
    """Write :func:`metrics_payload` as JSON to ``path`` (returns it).

    Parent directories are created; the write is plain (not atomic) --
    the artifact is an end-of-run emission, not a shared cache.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(metrics_payload(registry, extra), indent=2, default=str)
        + "\n"
    )
    return target
