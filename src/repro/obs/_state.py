"""Process-wide on/off switch for the observability layer.

One boolean gates *all* instrumentation call sites: span creation,
counter increments, gauge writes and histogram observations.  The
hot-path contract is that a disabled call site costs one attribute
load and one branch -- no allocation, no locking, no dictionary work
-- so instrumentation can live inside the time-stepping and
factorization loops without a measurable footprint (the benchmark
suite pins the disabled overhead to <= 2% on the 500-segment ladder
transient).

The switch is deliberately process-wide rather than per-registry or
per-tracer: the instrumented layers (``repro.spice``, ``repro.sweep``)
must not thread an observability handle through every signature, and a
single flag keeps the disabled fast path branch-predictable.
"""

from __future__ import annotations

import os

__all__ = ["enabled", "enable", "disable"]


class _State:
    """Mutable holder so the flag can be flipped at runtime."""

    __slots__ = ("on",)

    def __init__(self) -> None:
        self.on = os.environ.get("REPRO_OBS", "").strip() not in ("", "0")


#: The single process-wide switch (module-private; use the functions).
_STATE = _State()


def enabled() -> bool:
    """True when instrumentation is currently collecting."""
    return _STATE.on


def enable() -> None:
    """Turn span tracing and metrics collection on (process-wide)."""
    _STATE.on = True


def disable() -> None:
    """Turn instrumentation off; call sites revert to the no-op path."""
    _STATE.on = False
