"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

A metric is a name plus an optional set of string labels; each distinct
label combination is its own series::

    obs.inc("spice.backend.refactorize", backend="banded")
    obs.observe("sweep.chunk_seconds", 0.031)
    obs.set_gauge("sweep.cache.hit_rate", 0.75)

- **Counters** only go up (monotonic within a process); use them for
  event and work counts (factorizations, steps, cache hits).
- **Gauges** hold the last written value; use them for levels and
  ratios (hit rate, last system size).
- **Histograms** bucket observations against a *fixed* boundary list
  chosen at first observation (defaults below), tracking count / sum /
  sum-of-squares / min / max alongside the per-bucket tallies -- enough
  to emit mean, stddev and a cumulative distribution without storing
  samples.

Everything lives in one process-wide :data:`REGISTRY` by default so
instrumented library code and report emitters need no shared handle;
isolated :class:`MetricsRegistry` instances exist for tests.  The
module-level helpers (:func:`inc`, :func:`observe`, :func:`set_gauge`)
are *gated* on the global enable switch -- they are the form the
instrumented layers call -- while the registry methods themselves are
unconditional for direct/manual use.

All state is guarded by one lock per registry; increments are cheap
(a dict lookup and a float add), so the lock is uncontended in
practice -- the hot loops of the simulator call the gated helpers,
which cost a single branch while disabled.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator, Mapping

from repro.obs._state import _STATE

__all__ = [
    "TIME_BUCKETS",
    "COUNT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "inc",
    "set_gauge",
    "observe",
]

#: Default boundaries (seconds) for duration histograms: 1 us .. 100 s
#: in half-decade steps.  An observation beyond the last edge lands in
#: the overflow bucket.
TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 3.16e-6, 1e-5, 3.16e-5, 1e-4, 3.16e-4,
    1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1,
    1.0, 3.16, 10.0, 31.6, 100.0,
)

#: Default boundaries for size/count histograms (batch widths, step
#: counts, nnz): 1 .. 1e6 in a 1-2-5 progression.
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
    100_000, 1_000_000,
)


def _label_key(labels: Mapping[str, object]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary stats.

    ``bounds`` are the inclusive upper edges of the buckets; a final
    implicit overflow bucket catches everything beyond ``bounds[-1]``.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "sumsq", "min", "max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise ValueError(f"bucket bounds must be increasing, got {bounds!r}")
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        slot = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                slot = i
                break
        self.bucket_counts[slot] += 1
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0 when fewer than 2 samples)."""
        if self.count < 2:
            return 0.0
        var = self.sumsq / self.count - self.mean**2
        return math.sqrt(max(0.0, var))

    def as_dict(self) -> dict:
        """JSON-ready summary: stats plus ``[upper_edge, count]`` rows."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "stddev": self.stddev,
            "buckets": [
                [bound, n] for bound, n in zip(self.bounds, self.bucket_counts)
            ],
            "overflow": self.bucket_counts[-1],
        }


class MetricsRegistry:
    """Thread-safe store of labeled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, tuple], float] = {}
        self._gauges: dict[tuple[str, tuple], float] = {}
        self._histograms: dict[tuple[str, tuple], Histogram] = {}

    # -- writes ------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` (default 1) to the counter series."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge series to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[(name, _label_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
        **labels,
    ) -> None:
        """Record ``value`` into the histogram series.

        ``buckets`` fixes the boundaries when the series is first
        observed (later calls reuse them); the default is
        :data:`TIME_BUCKETS` -- pass :data:`COUNT_BUCKETS` (or custom
        edges) for size-like metrics.
        """
        key = (name, _label_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = Histogram(tuple(buckets) if buckets else TIME_BUCKETS)
                self._histograms[key] = hist
            hist.observe(value)

    # -- reads -------------------------------------------------------------

    def counter(self, name: str, **labels) -> float:
        """Current value of one counter series (0 when never written)."""
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all its label series."""
        with self._lock:
            return sum(
                v for (n, _), v in self._counters.items() if n == name
            )

    def gauge(self, name: str, **labels) -> float | None:
        """Current value of one gauge series (None when never set)."""
        with self._lock:
            return self._gauges.get((name, _label_key(labels)))

    def histogram(self, name: str, **labels) -> Histogram | None:
        """The live histogram of one series (None when never observed)."""
        with self._lock:
            return self._histograms.get((name, _label_key(labels)))

    def __iter__(self) -> Iterator[tuple[str, tuple, str]]:
        """Yield ``(name, labels, kind)`` for every series."""
        with self._lock:
            items = (
                [(n, l, "counter") for n, l in self._counters]
                + [(n, l, "gauge") for n, l in self._gauges]
                + [(n, l, "histogram") for n, l in self._histograms]
            )
        return iter(items)

    def snapshot(self) -> dict:
        """JSON-ready dump: ``{kind: {name: [{labels, ...}, ...]}}``.

        Series of one name are listed together, each entry carrying its
        ``labels`` mapping; histograms expand via
        :meth:`Histogram.as_dict`.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                key: hist.as_dict() for key, hist in self._histograms.items()
            }

        def _grouped(flat: dict, value_key: str | None) -> dict:
            grouped: dict[str, list] = {}
            for (name, labels), value in sorted(flat.items()):
                entry = {"labels": dict(labels)}
                if value_key is None:
                    entry.update(value)
                else:
                    entry[value_key] = value
                grouped.setdefault(name, []).append(entry)
            return grouped

        return {
            "counters": _grouped(counters, "value"),
            "gauges": _grouped(gauges, "value"),
            "histograms": _grouped(histograms, None),
        }

    def reset(self) -> None:
        """Drop every series (counters, gauges and histograms)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide default registry every emitter reads from.
REGISTRY = MetricsRegistry()


def inc(name: str, value: float = 1.0, **labels) -> None:
    """Gated counter increment into :data:`REGISTRY` (no-op while disabled)."""
    if _STATE.on:
        REGISTRY.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    """Gated gauge write into :data:`REGISTRY` (no-op while disabled)."""
    if _STATE.on:
        REGISTRY.set_gauge(name, value, **labels)


def observe(
    name: str,
    value: float,
    buckets: tuple[float, ...] | None = None,
    **labels,
) -> None:
    """Gated histogram observation into :data:`REGISTRY` (no-op while disabled)."""
    if _STATE.on:
        REGISTRY.observe(name, value, buckets, **labels)
