"""repro.obs -- spans, counters and solver telemetry (stdlib only).

The observability substrate of the simulation stack: a hierarchical
span tracer, a process-wide metrics registry and report emitters, all
behind one global switch that keeps the disabled fast path to a single
branch per call site (pinned to <= 2% overhead on the 500-segment
ladder transient by the benchmark suite).

Typical use::

    from repro import obs

    obs.enable()                       # or REPRO_OBS=1 in the env
    with obs.span("my.phase", size=n):
        obs.inc("my.events", backend="banded")
        obs.observe("my.seconds", dt)

    print(obs.render_trace())          # span tree
    obs.write_metrics("metrics.json")  # flat JSON artifact
    obs.reset()                        # clear spans + metrics

What the stack records while enabled (see the docs-site
"Instrumentation & metrics" page for the full catalogue):

- ``repro.spice.backend`` -- the ``resolve_backend("auto")`` decision
  with its size/bandwidth evidence, factorize/refactorize/solve/
  solve_many counts per backend, pattern nnz and band widths;
- ``repro.spice.mna`` -- structure builds vs O(nnz) revaluations;
- ``repro.spice.transient`` / ``repro.spice.ac`` -- spans per
  analysis, step counts, batch widths, shared-factorization reuse;
- ``repro.sweep`` -- cache-tier hits/misses, evaluation counts,
  per-chunk timing histograms (``SweepRunner`` folds its
  :class:`~repro.sweep.runner.RunnerStats` into gauges after each run).

Everything is standard library (``time``, ``contextvars``,
``threading``, ``json``); nothing here imports numpy/scipy, so the
layer can wrap the lowest-level solver code without import cycles.
"""

from __future__ import annotations

from repro.obs._state import disable, enable, enabled
from repro.obs.metrics import (
    COUNT_BUCKETS,
    REGISTRY,
    TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    inc,
    observe,
    set_gauge,
)
from repro.obs.report import (
    METRICS_SCHEMA_VERSION,
    benchmark_payload,
    elapsed_s,
    metrics_payload,
    render_metrics,
    render_trace,
    reset_elapsed,
    write_metrics,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    clear_trace,
    current_span,
    span,
    trace_roots,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    "capture",
    "reset",
    # tracing
    "Span",
    "NOOP_SPAN",
    "span",
    "current_span",
    "trace_roots",
    "clear_trace",
    # metrics
    "MetricsRegistry",
    "Histogram",
    "REGISTRY",
    "TIME_BUCKETS",
    "COUNT_BUCKETS",
    "inc",
    "observe",
    "set_gauge",
    # reports
    "METRICS_SCHEMA_VERSION",
    "render_trace",
    "render_metrics",
    "metrics_payload",
    "benchmark_payload",
    "write_metrics",
    "elapsed_s",
    "reset_elapsed",
]


def reset() -> None:
    """Clear all recorded telemetry: spans, metrics, elapsed clock."""
    clear_trace()
    REGISTRY.reset()
    reset_elapsed()


class capture:
    """Context manager: enable + start clean, restore state on exit.

    The test/tooling idiom for scoped collection::

        with obs.capture():
            run_workload()
            counts = obs.REGISTRY.counter("spice.transient.runs")

    On entry the layer is enabled and both the trace buffer and the
    default registry are cleared; on exit the previous enabled/disabled
    state is restored (recorded telemetry is kept for inspection until
    the next :func:`reset`).
    """

    def __enter__(self) -> "capture":
        self._was_enabled = enabled()
        reset()
        enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._was_enabled:
            disable()
        return False
